package exp

import "repro/smt"

// ThreadCounts is the paper's standard sweep for figures.
var ThreadCounts = []int{1, 2, 4, 6, 8}

// Fig3 reproduces Figure 3: instruction throughput of the base RR.1.8
// hardware versus thread count, plus the unmodified superscalar point.
func Fig3(o Opts) (base []Point, superscalar Point) {
	base = Series("RR.1.8", []int{1, 2, 3, 4, 5, 6, 7, 8}, func(t int) smt.Config {
		return MustFetchScheme(t, "RR", 1, 8)
	}, o)
	superscalar = Measure(smt.Superscalar(), o)
	superscalar.Label = "superscalar"
	return base, superscalar
}

// Table3Row is one column of Table 3 (metrics at a thread count) for the
// base RR.1.8 architecture.
type Table3Row struct {
	Threads int
	Res     smt.Results
}

// Table3 reproduces Table 3: low-level metrics at 1, 4, and 8 threads.
func Table3(o Opts) []Table3Row {
	rows := make([]Table3Row, 0, 3)
	for _, t := range []int{1, 4, 8} {
		p := Measure(MustFetchScheme(t, "RR", 1, 8), o)
		rows = append(rows, Table3Row{Threads: t, Res: p.Results})
	}
	return rows
}

// Fig4 reproduces Figure 4: fetch partitioning schemes RR.1.8, RR.2.4,
// RR.4.2, RR.2.8 across thread counts.
func Fig4(o Opts) map[string][]Point {
	schemes := []struct {
		name       string
		num1, num2 int
	}{
		{"RR.1.8", 1, 8}, {"RR.2.4", 2, 4}, {"RR.4.2", 4, 2}, {"RR.2.8", 2, 8},
	}
	out := make(map[string][]Point, len(schemes))
	for _, s := range schemes {
		s := s
		out[s.name] = Series(s.name, ThreadCounts, func(t int) smt.Config {
			return MustFetchScheme(t, "RR", s.num1, s.num2)
		}, o)
	}
	return out
}

// Fig5Algs lists the fetch-choice policies of Figure 5.
var Fig5Algs = []string{"RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN"}

// Fig5 reproduces Figure 5: fetch-choice heuristics under the 1.8 and 2.8
// partitioning schemes.
func Fig5(o Opts) map[string][]Point {
	out := make(map[string][]Point)
	for _, alg := range Fig5Algs {
		for _, scheme := range []struct{ num1, num2 int }{{1, 8}, {2, 8}} {
			alg, scheme := alg, scheme
			name := alg + fmtScheme(scheme.num1, scheme.num2)
			out[name] = Series(name, []int{2, 4, 6, 8}, func(t int) smt.Config {
				return MustFetchScheme(t, alg, scheme.num1, scheme.num2)
			}, o)
		}
	}
	return out
}

func fmtScheme(n1, n2 int) string {
	return "." + string(rune('0'+n1)) + "." + string(rune('0'+n2))
}

// Table4 reproduces Table 4: low-level metrics for RR.2.8 and ICOUNT.2.8 at
// 8 threads, next to the 1-thread baseline.
func Table4(o Opts) (one, rr, icount smt.Results) {
	one = Measure(MustFetchScheme(1, "RR", 1, 8), o).Results
	rr = Measure(MustFetchScheme(8, "RR", 2, 8), o).Results
	icount = Measure(MustFetchScheme(8, "ICOUNT", 2, 8), o).Results
	return one, rr, icount
}

// Fig6 reproduces Figure 6: the BIGQ and ITAG variants on top of
// ICOUNT.1.8 and ICOUNT.2.8.
func Fig6(o Opts) map[string][]Point {
	variants := []struct {
		name string
		mod  func(*smt.Config)
	}{
		{"", func(*smt.Config) {}},
		{"BIGQ,", func(c *smt.Config) { c.BigQ = true }},
		{"ITAG,", func(c *smt.Config) { c.ITAG = true }},
	}
	out := make(map[string][]Point)
	for _, v := range variants {
		for _, scheme := range []struct{ num1, num2 int }{{1, 8}, {2, 8}} {
			v, scheme := v, scheme
			name := v.name + "ICOUNT" + fmtScheme(scheme.num1, scheme.num2)
			out[name] = Series(name, ThreadCounts, func(t int) smt.Config {
				cfg := MustFetchScheme(t, "ICOUNT", scheme.num1, scheme.num2)
				v.mod(&cfg)
				return cfg
			}, o)
		}
	}
	return out
}

// Table5Row is one issue policy's results across thread counts.
type Table5Row struct {
	Policy     string
	IPC        map[int]float64
	WrongPath  float64 // useless wrong-path issue fraction at 8 threads
	Optimistic float64 // squashed optimistic issue fraction at 8 threads
}

// Table5 reproduces Table 5: issue policies under ICOUNT.2.8.
func Table5(o Opts) []Table5Row {
	policies := []struct {
		name string
		alg  func(*smt.Config)
	}{
		{"OLDEST", func(c *smt.Config) { c.IssuePolicy = smt.IssueOldestFirst }},
		{"OPT_LAST", func(c *smt.Config) { c.IssuePolicy = smt.IssueOptLast }},
		{"SPEC_LAST", func(c *smt.Config) { c.IssuePolicy = smt.IssueSpecLast }},
		{"BRANCH_FIRST", func(c *smt.Config) { c.IssuePolicy = smt.IssueBranchFirst }},
	}
	rows := make([]Table5Row, 0, len(policies))
	for _, pol := range policies {
		row := Table5Row{Policy: pol.name, IPC: map[int]float64{}}
		for _, t := range ThreadCounts {
			cfg := ICount28(t)
			pol.alg(&cfg)
			p := Measure(cfg, o)
			row.IPC[t] = p.IPC
			if t == 8 {
				row.WrongPath = p.Results.WrongPathIssued
				row.Optimistic = p.Results.OptimisticSquash
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig7 reproduces Figure 7: throughput with a fixed 200-register budget per
// file as hardware contexts vary from 1 to 5.
func Fig7(o Opts) []Point {
	return Series("200 regs", []int{1, 2, 3, 4, 5}, func(t int) smt.Config {
		cfg := ICount28(t)
		cfg.Rename.ExcessRegs = 0
		cfg.Rename.TotalRegs = 200
		return cfg
	}, o)
}
