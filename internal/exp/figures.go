package exp

import "repro/smt"

// ThreadCounts is the paper's standard sweep for figures.
var ThreadCounts = []int{1, 2, 4, 6, 8}

// seriesOf builds one series of PointSpecs across thread counts.
func seriesOf(name string, threads []int, mk func(t int) smt.Config) []PointSpec {
	pts := make([]PointSpec, 0, len(threads))
	for _, t := range threads {
		pts = append(pts, PointSpec{Series: name, Label: name, Threads: t, Config: mk(t)})
	}
	return pts
}

func init() {
	Register(Experiment{
		Name:  "fig3",
		Title: "Figure 3: base RR.1.8 throughput vs. threads",
		Shape: Shape{Series: 2, Points: 9},
		Points: func() []PointSpec {
			pts := seriesOf("RR.1.8", []int{1, 2, 3, 4, 5, 6, 7, 8}, func(t int) smt.Config {
				return MustFetchScheme(t, "RR", 1, 8)
			})
			return append(pts, PointSpec{
				Series: "superscalar", Label: "superscalar", Threads: 1, Config: smt.Superscalar(),
			})
		},
	})
	Register(Experiment{
		Name:  "table3",
		Title: "Table 3: low-level metrics at 1, 4, 8 threads (RR.1.8)",
		Shape: Shape{Series: 1, Points: 3},
		Points: func() []PointSpec {
			return seriesOf("RR.1.8", []int{1, 4, 8}, func(t int) smt.Config {
				return MustFetchScheme(t, "RR", 1, 8)
			})
		},
	})
	Register(Experiment{
		Name:  "fig4",
		Title: "Figure 4: fetch partitioning schemes",
		Shape: Shape{Series: 4, Points: 20},
		Points: func() []PointSpec {
			var pts []PointSpec
			for _, s := range []struct {
				name       string
				num1, num2 int
			}{
				{"RR.1.8", 1, 8}, {"RR.2.4", 2, 4}, {"RR.4.2", 4, 2}, {"RR.2.8", 2, 8},
			} {
				s := s
				pts = append(pts, seriesOf(s.name, ThreadCounts, func(t int) smt.Config {
					return MustFetchScheme(t, "RR", s.num1, s.num2)
				})...)
			}
			return pts
		},
	})
	Register(Experiment{
		Name:  "fig5",
		Title: "Figure 5: fetch-choice policies",
		Shape: Shape{Series: 10, Points: 40},
		Points: func() []PointSpec {
			var pts []PointSpec
			for _, alg := range Fig5Algs {
				for _, scheme := range []struct{ num1, num2 int }{{1, 8}, {2, 8}} {
					alg, scheme := alg, scheme
					name := alg + fmtScheme(scheme.num1, scheme.num2)
					pts = append(pts, seriesOf(name, []int{2, 4, 6, 8}, func(t int) smt.Config {
						return MustFetchScheme(t, alg, scheme.num1, scheme.num2)
					})...)
				}
			}
			return pts
		},
	})
	Register(Experiment{
		Name:  "table4",
		Title: "Table 4: RR vs ICOUNT low-level metrics",
		Shape: Shape{Series: 3, Points: 3},
		Points: func() []PointSpec {
			return []PointSpec{
				{Series: "1 thread", Label: "RR.1.8", Threads: 1, Config: MustFetchScheme(1, "RR", 1, 8)},
				{Series: "RR.2.8", Label: "RR.2.8", Threads: 8, Config: MustFetchScheme(8, "RR", 2, 8)},
				{Series: "ICOUNT.2.8", Label: "ICOUNT.2.8", Threads: 8, Config: MustFetchScheme(8, "ICOUNT", 2, 8)},
			}
		},
	})
	Register(Experiment{
		Name:  "fig6",
		Title: "Figure 6: BIGQ and ITAG on top of ICOUNT",
		Shape: Shape{Series: 6, Points: 30},
		Points: func() []PointSpec {
			variants := []struct {
				name string
				mod  func(*smt.Config)
			}{
				{"", func(*smt.Config) {}},
				{"BIGQ,", func(c *smt.Config) { c.BigQ = true }},
				{"ITAG,", func(c *smt.Config) { c.ITAG = true }},
			}
			var pts []PointSpec
			for _, v := range variants {
				for _, scheme := range []struct{ num1, num2 int }{{1, 8}, {2, 8}} {
					v, scheme := v, scheme
					name := v.name + "ICOUNT" + fmtScheme(scheme.num1, scheme.num2)
					pts = append(pts, seriesOf(name, ThreadCounts, func(t int) smt.Config {
						cfg := MustFetchScheme(t, "ICOUNT", scheme.num1, scheme.num2)
						v.mod(&cfg)
						return cfg
					})...)
				}
			}
			return pts
		},
	})
	Register(Experiment{
		Name:  "table5",
		Title: "Table 5: issue policies",
		Shape: Shape{Series: 4, Points: 20},
		Points: func() []PointSpec {
			var pts []PointSpec
			for _, pol := range issuePolicies() {
				pol := pol
				pts = append(pts, seriesOf(pol.name, ThreadCounts, func(t int) smt.Config {
					cfg := ICount28(t)
					pol.alg(&cfg)
					return cfg
				})...)
			}
			return pts
		},
	})
	Register(Experiment{
		Name:  "sec7",
		Title: "Section 7: bottleneck studies around ICOUNT.2.8",
		Shape: Shape{Series: 14, Points: 20},
		Points: func() []PointSpec {
			pts := seriesOf(sec7BaselineSeries, []int{1, 4, 8}, ICount28)
			for _, c := range sec7Cases() {
				c := c
				pts = append(pts, seriesOf(c.name, c.threads, func(t int) smt.Config {
					cfg := ICount28(t)
					c.mod(&cfg)
					return cfg
				})...)
			}
			return pts
		},
	})
	Register(Experiment{
		Name:  "fig7",
		Title: "Figure 7: 200 physical registers, 1-5 contexts",
		Shape: Shape{Series: 1, Points: 5},
		Points: func() []PointSpec {
			return seriesOf("200 regs", []int{1, 2, 3, 4, 5}, func(t int) smt.Config {
				cfg := ICount28(t)
				cfg.Rename.ExcessRegs = 0
				cfg.Rename.TotalRegs = 200
				return cfg
			})
		},
	})
}

// issuePolicies lists Table 5's issue policies in paper order.
func issuePolicies() []struct {
	name string
	alg  func(*smt.Config)
} {
	return []struct {
		name string
		alg  func(*smt.Config)
	}{
		{"OLDEST", func(c *smt.Config) { c.IssuePolicy = smt.IssueOldestFirst }},
		{"OPT_LAST", func(c *smt.Config) { c.IssuePolicy = smt.IssueOptLast }},
		{"SPEC_LAST", func(c *smt.Config) { c.IssuePolicy = smt.IssueSpecLast }},
		{"BRANCH_FIRST", func(c *smt.Config) { c.IssuePolicy = smt.IssueBranchFirst }},
	}
}

// Fig3 reproduces Figure 3: instruction throughput of the base RR.1.8
// hardware versus thread count, plus the unmodified superscalar point.
func Fig3(o Opts) (base []Point, superscalar Point) {
	return Fig3Result(mustRun("fig3", o))
}

// Fig3Result extracts Figure 3's legacy shape from an engine result.
func Fig3Result(r *ExperimentResult) (base []Point, superscalar Point) {
	base = r.Lookup("RR.1.8")
	if ss := r.Lookup("superscalar"); len(ss) > 0 {
		superscalar = ss[0]
	}
	return base, superscalar
}

// Table3Row is one column of Table 3 (metrics at a thread count) for the
// base RR.1.8 architecture.
type Table3Row struct {
	Threads int
	Res     smt.Results
}

// Table3 reproduces Table 3: low-level metrics at 1, 4, and 8 threads.
func Table3(o Opts) []Table3Row {
	return Table3Rows(mustRun("table3", o))
}

// Table3Rows extracts Table 3's legacy shape from an engine result.
func Table3Rows(r *ExperimentResult) []Table3Row {
	pts := r.Lookup("RR.1.8")
	rows := make([]Table3Row, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, Table3Row{Threads: p.Threads, Res: p.Results})
	}
	return rows
}

// Fig4 reproduces Figure 4: fetch partitioning schemes RR.1.8, RR.2.4,
// RR.4.2, RR.2.8 across thread counts.
func Fig4(o Opts) map[string][]Point { return mustRun("fig4", o).SeriesMap() }

// Fig5Algs lists the fetch-choice policies of Figure 5.
var Fig5Algs = []string{"RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN"}

// Fig5 reproduces Figure 5: fetch-choice heuristics under the 1.8 and 2.8
// partitioning schemes.
func Fig5(o Opts) map[string][]Point { return mustRun("fig5", o).SeriesMap() }

func fmtScheme(n1, n2 int) string {
	return "." + string(rune('0'+n1)) + "." + string(rune('0'+n2))
}

// Table4 reproduces Table 4: low-level metrics for RR.2.8 and ICOUNT.2.8 at
// 8 threads, next to the 1-thread baseline.
func Table4(o Opts) (one, rr, icount smt.Results) {
	return Table4Results(mustRun("table4", o))
}

// Table4Results extracts Table 4's legacy shape from an engine result.
func Table4Results(r *ExperimentResult) (one, rr, icount smt.Results) {
	pick := func(series string) smt.Results {
		if pts := r.Lookup(series); len(pts) > 0 {
			return pts[0].Results
		}
		return smt.Results{}
	}
	return pick("1 thread"), pick("RR.2.8"), pick("ICOUNT.2.8")
}

// Fig6 reproduces Figure 6: the BIGQ and ITAG variants on top of
// ICOUNT.1.8 and ICOUNT.2.8.
func Fig6(o Opts) map[string][]Point { return mustRun("fig6", o).SeriesMap() }

// Table5Row is one issue policy's results across thread counts.
type Table5Row struct {
	Policy     string
	IPC        map[int]float64
	WrongPath  float64 // useless wrong-path issue fraction at 8 threads
	Optimistic float64 // squashed optimistic issue fraction at 8 threads
}

// Table5 reproduces Table 5: issue policies under ICOUNT.2.8.
func Table5(o Opts) []Table5Row {
	return Table5Rows(mustRun("table5", o))
}

// Table5Rows extracts Table 5's legacy shape from an engine result.
func Table5Rows(r *ExperimentResult) []Table5Row {
	rows := make([]Table5Row, 0, len(r.Series))
	for _, s := range r.Series {
		row := Table5Row{Policy: s.Name, IPC: map[int]float64{}}
		for _, p := range s.Points {
			row.IPC[p.Threads] = p.IPC
			if p.Threads == 8 {
				row.WrongPath = p.Results.WrongPathIssued
				row.Optimistic = p.Results.OptimisticSquash
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig7 reproduces Figure 7: throughput with a fixed 200-register budget per
// file as hardware contexts vary from 1 to 5.
func Fig7(o Opts) []Point {
	return mustRun("fig7", o).Lookup("200 regs")
}
