package exp

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/snapshot"
)

// mapSnapshots is the minimal in-memory SnapshotStore for tests.
type mapSnapshots struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapSnapshots() *mapSnapshots { return &mapSnapshots{m: map[string][]byte{}} }

func (s *mapSnapshots) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[key]
	return d, ok
}

func (s *mapSnapshots) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = data
}

func warmTestOpts() Opts { return Opts{Runs: 2, Warmup: 3_000, Measure: 5_000, Seed: 1} }

// The acceleration contract: SimulateEnv with any combination of snapshot
// store and trace cache returns bytes identical to the plain kernel — on the
// cold fill pass and on the warm restore pass.
func TestSimulateEnvMatchesSimulate(t *testing.T) {
	o := warmTestOpts()
	cfg := ICount28(4)
	want := Simulate(cfg, 0, JobSeed(o.Seed, 0), o, 0, nil)

	store := snapshot.NewStore(newMapSnapshots())
	env := WarmEnv{Snapshots: store, Traces: snapshot.NewTraceCache(0)}

	cold := SimulateEnv(cfg, 0, JobSeed(o.Seed, 0), o, 0, nil, env)
	if !reflect.DeepEqual(cold, want) {
		t.Fatalf("cold SimulateEnv differs from Simulate:\n got %+v\nwant %+v", cold, want)
	}
	if st := store.Stats(); st.Misses != 1 || st.Puts != 1 || st.Hits != 0 {
		t.Fatalf("cold pass store stats = %+v, want 1 miss + 1 put", st)
	}

	warm := SimulateEnv(cfg, 0, JobSeed(o.Seed, 0), o, 0, nil, env)
	if !reflect.DeepEqual(warm, want) {
		t.Fatalf("warm SimulateEnv differs from Simulate:\n got %+v\nwant %+v", warm, want)
	}
	if st := store.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("warm pass store stats = %+v, want the restore to hit without re-warming", st)
	}
	if ts := env.Traces.Stats(); ts.Builds != 1 || ts.Reuses < 1 {
		t.Fatalf("trace cache stats = %+v, want one build shared by both passes", ts)
	}
}

// A different configuration sharing the rotation must share the trace build
// but not the snapshot key.
func TestWarmEnvKeysSeparateConfigs(t *testing.T) {
	o := warmTestOpts()
	store := snapshot.NewStore(newMapSnapshots())
	env := WarmEnv{Snapshots: store, Traces: snapshot.NewTraceCache(0)}

	a := MustFetchScheme(4, "ICOUNT", 2, 8)
	b := MustFetchScheme(4, "RR", 2, 8)
	wantA := Simulate(a, 0, JobSeed(o.Seed, 0), o, 0, nil)
	wantB := Simulate(b, 0, JobSeed(o.Seed, 0), o, 0, nil)

	if got := SimulateEnv(a, 0, JobSeed(o.Seed, 0), o, 0, nil, env); !reflect.DeepEqual(got, wantA) {
		t.Fatal("config A differs under warm env")
	}
	if got := SimulateEnv(b, 0, JobSeed(o.Seed, 0), o, 0, nil, env); !reflect.DeepEqual(got, wantB) {
		t.Fatal("config B differs under warm env")
	}
	if st := store.Stats(); st.Hits != 0 || st.Misses != 2 || st.Puts != 2 {
		t.Fatalf("store stats = %+v, want distinct configs to miss separately", st)
	}
	if ts := env.Traces.Stats(); ts.Builds != 1 {
		t.Fatalf("trace cache built %d sets, want 1 shared across configs", ts.Builds)
	}
}

// A full parallel sweep through Runner.Snapshots/Runner.Traces must emit the
// exact bytes of an unaccelerated sweep — run twice, so the second pass
// exercises the all-restored path.
func TestRunnerWarmSweepByteIdentical(t *testing.T) {
	e, ok := Lookup("fig4")
	if !ok {
		t.Skip("registry experiment missing")
	}
	o := Opts{Runs: 2, Warmup: 2_000, Measure: 4_000, Seed: 1}

	base, err := Runner{Workers: 2}.RunExperiment(context.Background(), e, o)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}

	store := snapshot.NewStore(newMapSnapshots())
	warm := Runner{Workers: 4, Snapshots: store, Traces: snapshot.NewTraceCache(0)}
	for pass := 0; pass < 2; pass++ {
		res, err := warm.RunExperiment(context.Background(), e, o)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("warm sweep pass %d not byte-identical to cold sweep", pass)
		}
	}
	st := store.Stats()
	if st.Hits == 0 || st.Puts == 0 {
		t.Fatalf("store stats = %+v, want cold fills then warm restores", st)
	}
	if st.Misses != st.Puts {
		t.Fatalf("store stats = %+v, want every miss filled exactly once", st)
	}
}

// Corrupt or truncated snapshot files are cold misses, not failures: the
// disk tier's integrity check eats them (counting Corrupt), the runner
// re-warms, and results stay byte-identical — mirroring cache.Disk's
// semantics for simulation results.
func TestCorruptSnapshotIsColdMiss(t *testing.T) {
	o := warmTestOpts()
	cfg := ICount28(4)
	want := Simulate(cfg, 0, JobSeed(o.Seed, 0), o, 0, nil)

	dir := t.TempDir()
	disk, err := cache.NewDisk[[]byte](dir)
	if err != nil {
		t.Fatal(err)
	}
	store := snapshot.NewStore(disk)
	env := WarmEnv{Snapshots: store}
	if got := SimulateEnv(cfg, 0, JobSeed(o.Seed, 0), o, 0, nil, env); !reflect.DeepEqual(got, want) {
		t.Fatal("cold fill differs")
	}

	// Truncate every stored snapshot file in place.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var clobbered int
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		clobbered++
	}
	if clobbered == 0 {
		t.Fatal("no snapshot files written to disk")
	}

	if got := SimulateEnv(cfg, 0, JobSeed(o.Seed, 0), o, 0, nil, env); !reflect.DeepEqual(got, want) {
		t.Fatal("run after corruption differs")
	}
	if ds := disk.Stats(); ds.Corrupt == 0 {
		t.Fatalf("disk stats = %+v, want corrupt reads counted", ds)
	}
	if st := store.Stats(); st.Hits != 0 {
		t.Fatalf("store stats = %+v, want corruption served as misses", st)
	}
}

// Bytes that pass storage integrity but fail the snapshot envelope check
// (version skew, wrong identity) leave the machine rebuilt and run cold —
// results never change.
func TestUnrestorableSnapshotRunsCold(t *testing.T) {
	o := warmTestOpts()
	cfg := ICount28(4)
	want := Simulate(cfg, 0, JobSeed(o.Seed, 0), o, 0, nil)

	seed := JobSeed(o.Seed, 0)
	key := snapshot.Key(cfg.Fingerprint(), 0, seed, o.Warmup)
	poisoned := newMapSnapshots()
	poisoned.Put(key, []byte(`{"version":999}`))

	env := WarmEnv{Snapshots: snapshot.NewStore(poisoned)}
	if got := SimulateEnv(cfg, 0, seed, o, 0, nil, env); !reflect.DeepEqual(got, want) {
		t.Fatal("poisoned snapshot changed results")
	}
}
