package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenOpts are the committed-budget opts behind every golden file. They
// are deliberately tiny: golden files freeze the simulator's exact output,
// so regenerating them must take well under a second per experiment.
func goldenOpts() Opts {
	return Opts{Runs: 2, Warmup: 1_000, Measure: 2_000, Seed: 1}
}

// goldenExperiments lists the registry entries with committed golden files.
// Small grids only — the point is regression coverage of the engine and the
// simulator, not a full paper reproduction in testdata.
var goldenExperiments = []string{"fig7", "table4", "table3", "predmatrix", "predvfr"}

// TestGoldenFiles runs each golden experiment through the parallel engine
// and compares the JSON byte-for-byte with the file under testdata/.
// Refresh after an intentional simulator or schema change with:
//
//	go test ./internal/exp -run Golden -update
func TestGoldenFiles(t *testing.T) {
	for _, name := range goldenExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(name, goldenOpts(), 0)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.EncodeJSON(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s drifted from golden file %s\n(if the change is intentional, rerun with -update)\ngot:\n%s",
					name, path, buf.Bytes())
			}
		})
	}
}

// TestGoldenSchemaVersion pins the schema constant; bumping it must be a
// deliberate act that also regenerates every golden file.
func TestGoldenSchemaVersion(t *testing.T) {
	if SchemaVersion != 2 {
		t.Fatalf("SchemaVersion is %d; regenerate golden files and update this test deliberately", SchemaVersion)
	}
}
