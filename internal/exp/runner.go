package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/snapshot"
	"repro/smt"
)

// Job is one simulation of an experiment grid: point Point of the grid run
// at benchmark rotation Run. Jobs are independent, so the runner may execute
// them in any order on any worker; JobSeed ties the workload stream to the
// job's rotation rather than its schedule, which is what makes parallel
// output bit-identical to serial output.
type Job struct {
	Experiment string
	Point      int
	Run        int
	Spec       PointSpec
}

// JobSeed derives the deterministic workload seed for a job. It depends
// only on the base seed and the rotation index — deliberately NOT on the
// experiment name or point index — so every configuration in a grid runs
// the exact same workload streams per rotation (the paper's paired
// methodology: IPC deltas between points isolate the machine change, not
// the workload draw) and so engine numbers match Measure for the same
// config. Schedule independence alone is what parallel determinism needs.
func JobSeed(base uint64, run int) uint64 {
	return base + uint64(run)
}

// Key returns the job's content address: everything that determines its
// smt.Results — the machine configuration's fingerprint, the rotation, the
// derived workload seed, and the measurement budgets. Experiment and point
// identity are deliberately excluded (they do not affect the simulation),
// so the same configuration appearing in two different grids shares one
// cache entry.
func (j Job) Key(o Opts) string {
	o = o.Normalized()
	return j.keyFor(o, JobSeed(o.Seed, j.Run))
}

// keyFor is Key with the rotation seed already derived — the sweep-level
// path, where RunExperiment hoists the per-rotation derivation to setup so
// result keys, snapshot keys, and trace builds all consume one canonical
// seed instead of re-deriving it per grid point.
func (j Job) keyFor(o Opts, seed uint64) string {
	return fmt.Sprintf("%s:r%d:s%d:w%d:m%d",
		j.Spec.Config.Fingerprint(), j.Run, seed, o.Warmup, o.Measure)
}

// rotationSeeds derives every rotation's workload seed once, at sweep
// setup. Each job then receives seeds[j.Run] instead of deriving its own,
// so the three consumers of a rotation seed — the result cache key, the
// snapshot key, and the trace build — cannot drift apart.
func rotationSeeds(o Opts) []uint64 {
	seeds := make([]uint64, o.Runs)
	for run := range seeds {
		seeds[run] = JobSeed(o.Seed, run)
	}
	return seeds
}

// JobCache is the pluggable per-job result store the runner consults
// before simulating. Implementations must be safe for concurrent use; the
// content-addressed LRU store in internal/cache satisfies this interface
// as cache.Store[smt.Results].
type JobCache interface {
	Get(key string) (smt.Results, bool)
	Put(key string, r smt.Results)
}

// keyForgetter is the optional JobCache extension for caches whose Get
// creates a leader obligation (cache.Flight): a runner that cannot Put a
// key it leads — its dispatch failed or was cancelled — must Forget it so
// waiters blocked on the in-flight computation wake up and re-lead.
type keyForgetter interface {
	Forget(key string)
}

// ctxJobCache is the optional JobCache extension for caches whose Get
// can block behind another runner's in-flight computation (cache.Flight):
// the wait honors ctx, so a cancelled sweep abandons it immediately
// instead of sitting out a possibly remote, possibly requeued job. An
// error return takes no cache leadership.
type ctxJobCache interface {
	GetCtx(ctx context.Context, key string) (smt.Results, bool, error)
}

// Dispatcher executes one cache-missed job somewhere — possibly another
// process or machine — and returns its results. The contract is strict
// determinism: Dispatch must return exactly the smt.Results that Simulate
// would produce for the job in this process, so a distributed run stays
// byte-identical to a local one. interval > 0 asks the executor to forward
// interval snapshots to onSnap (never nil when interval > 0 is passed by
// the runner with an OnSnapshot observer; implementations may ignore the
// request but must not change results). Dispatch is called concurrently
// from worker goroutines and must honor ctx cancellation.
type Dispatcher interface {
	Dispatch(ctx context.Context, j Job, o Opts, interval int64, onSnap func(smt.Snapshot)) (smt.Results, error)
}

// SnapshotStore is the pluggable warmup-checkpoint store the runner (and
// the distributed worker) probes before warming a machine and fills after
// a cold warmup. Implementations must be safe for concurrent use; the
// []byte-typed internal/cache tiers satisfy it, as does the counting
// wrapper internal/snapshot.Store.
type SnapshotStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte)
}

// WarmEnv carries the optional sweep-acceleration layers into the
// measurement kernel. The zero value disables both; either field works
// alone. Neither layer changes result bytes — restored and replayed runs
// are byte-identical to cold runs by construction.
type WarmEnv struct {
	// Snapshots checkpoints warmed machine state under
	// snapshot.Key(fingerprint, rotation, seed, warmup): a hit restores
	// the machine past its entire warmup, a miss warms cold and fills the
	// store for every later run sharing the key.
	Snapshots SnapshotStore
	// Traces pre-decodes each rotation's workloads once and replays the
	// shared trace in every configuration's fetch path.
	Traces *snapshot.TraceCache
}

func (env WarmEnv) enabled() bool { return env.Snapshots != nil || env.Traces != nil }

// Simulate executes one job's measurement kernel in-process: build the
// machine, warm it, measure, optionally streaming interval snapshots. It
// is the exact function every execution path funnels through — serial
// Measure, the parallel runner, and distributed workers — which is what
// makes results content-addressable and byte-identical across all of
// them. Only cfg, rotation, seed, and the o.Warmup/o.Measure budgets
// affect the returned results.
func Simulate(cfg smt.Config, rotation int, seed uint64, o Opts, interval int64, onSnap func(smt.Snapshot)) smt.Results {
	return runOne(cfg, rotation, seed, o, interval, onSnap, WarmEnv{})
}

// SimulateEnv is Simulate through a warm-acceleration environment: the
// same kernel, with warmup checkpointing and/or trace replay layered in.
// Results are byte-identical to Simulate's for every env.
func SimulateEnv(cfg smt.Config, rotation int, seed uint64, o Opts, interval int64, onSnap func(smt.Snapshot), env WarmEnv) smt.Results {
	return runOne(cfg, rotation, seed, o, interval, onSnap, env)
}

// runOne is the shared measurement kernel: build the machine, warm it, and
// measure — as one streaming run session. Every path into the simulator
// (serial Measure, parallel runner) funnels through here so budgets and
// methodology cannot drift apart. interval > 0 forwards per-interval
// snapshots to onSnap while the simulation advances; the streamed final
// results are byte-identical to a blocking run, so streaming is invisible
// to callers that only consume the return value.
//
// With env.Traces the machine replays the rotation's pre-decoded trace;
// with env.Snapshots the warmup phase is checkpointed: restore on a hit
// (zero warmup cycles simulated), warm-and-save on a miss. Splitting
// warmup and measurement into two sessions steps the identical cycle
// sequence as the combined session — the warmup loop and statistics reset
// happen at the same machine states — so every path commits the same bits.
func runOne(cfg smt.Config, rotate int, seed uint64, o Opts, interval int64, onSnap func(smt.Snapshot), env WarmEnv) smt.Results {
	spec := smt.WorkloadMix(cfg.Threads, rotate, seed)
	warmup := o.Warmup
	if warmup < 0 {
		warmup = 0 // historical behavior: a negative warmup skips warmup
	}

	build := func() *smt.Simulator {
		if env.Traces != nil {
			// Size the pre-decoded prefix at each thread's expected share
			// plus slack. Undersizing is safe — a replayed run that outlives
			// its trace spills onto a live walker bit-identically — so this
			// is a performance knob, not a correctness bound.
			records := warmup + o.Measure
			records += records>>3 + 1024
			if ts, err := env.Traces.Get(spec, records); err == nil {
				if sim, err := smt.NewReplay(cfg, ts); err == nil {
					return sim
				}
			}
		}
		return smt.MustNew(cfg, spec)
	}

	measure := func(sim *smt.Simulator, warm int64) smt.Results {
		sess, err := sim.Start(context.Background(), smt.RunSpec{
			Warmup:         warm,
			Instructions:   o.Measure * int64(cfg.Threads),
			IntervalCycles: interval,
		})
		if err != nil {
			panic(err) // unreachable: the simulator is freshly built and idle
		}
		for snap := range sess.Snapshots() {
			if onSnap != nil {
				onSnap(snap)
			}
		}
		res, _ := sess.Finish()
		return res
	}

	sim := build()
	if env.Snapshots == nil || warmup == 0 {
		return measure(sim, warmup*int64(cfg.Threads))
	}

	key := snapshot.Key(cfg.Fingerprint(), rotate, seed, warmup)
	if data, ok := env.Snapshots.Get(key); ok {
		if err := sim.RestoreSnapshot(data); err == nil {
			return measure(sim, 0)
		}
		// A snapshot that fails to restore (version skew, corruption the
		// storage tiers could not catch) leaves the machine undefined:
		// rebuild and run cold, exactly as if the probe had missed.
		sim = build()
	}
	sim.Warmup(warmup * int64(cfg.Threads))
	if data, err := sim.SaveSnapshot(); err == nil {
		// Unsaveable machines (custom predictors) just stay cold.
		env.Snapshots.Put(key, data)
	}
	return measure(sim, 0)
}

// Runner executes experiment grids across a bounded worker pool.
type Runner struct {
	// Workers is the pool size; <=0 means runtime.GOMAXPROCS(0).
	Workers int

	// Cache, when non-nil, is consulted per job before simulating and
	// updated after. Because jobs are deterministic functions of their
	// content address, a cache hit returns exactly the bytes a fresh
	// simulation would, so cached and uncached runs stay byte-identical.
	Cache JobCache

	// OnJobDone, when non-nil, observes every job completion with its
	// results and whether they came from Cache. It is called from worker
	// goroutines, possibly concurrently and in any order; implementations
	// must synchronize their own state.
	OnJobDone func(j Job, r smt.Results, fromCache bool)

	// Interval, when positive, streams interval snapshots from every
	// simulated job: the job runs as a streaming session emitting a
	// smt.Snapshot every Interval cycles, each forwarded to OnSnapshot.
	// Cache hits produce no snapshots (nothing simulates). Streaming never
	// changes results — a job's final streamed results are byte-identical
	// to its blocking results.
	Interval int64

	// OnSnapshot, when non-nil (and Interval is positive), observes every
	// interval snapshot of every simulating job. Like OnJobDone it is
	// called from worker goroutines; implementations must synchronize.
	OnSnapshot func(j Job, s smt.Snapshot)

	// Dispatch, when non-nil, hands every cache-missed job to an external
	// executor — the distributed coordinator in internal/dist — instead of
	// simulating in-process. The cache protocol is unchanged (lookup before
	// dispatch, fill after), so overlapping sweeps dedupe identically, and
	// because dispatchers are determinism-bound (see Dispatcher) the
	// aggregated result bytes are identical to a local run. Sem is not
	// consulted on the dispatch path: bounding execution is the
	// dispatcher's job (a remote fleet has its own capacity).
	Dispatch Dispatcher

	// Sem, when non-nil, is a counting semaphore bounding concurrent
	// simulations across every Runner sharing it. A multi-tenant caller
	// (the smtd service runs one Runner per sweep) sizes it once so N
	// concurrent sweeps cannot oversubscribe the machine N-fold. A slot is
	// acquired only after a cache miss — cache hits, and waiters blocked on
	// another runner's in-flight computation of the same key, consume no
	// slot.
	Sem chan struct{}

	// Snapshots, when non-nil, checkpoints warmed machine state across the
	// sweep (and, through a shared tier stack, across sweeps, restarts,
	// and federation peers): cache-missed jobs restore a stored warmup
	// instead of simulating it, and cold warmups fill the store. Mirrors
	// the Cache/Dispatch seams — smtd, the distributed worker, and the
	// CLI all plug the same interface. See WarmEnv.
	Snapshots SnapshotStore

	// Traces, when non-nil, pre-decodes each rotation's workloads once per
	// sweep and replays the shared trace in every simulated job's fetch
	// path. See WarmEnv.
	Traces *snapshot.TraceCache
}

// warmEnv bundles the runner's acceleration seams for the kernel.
func (r Runner) warmEnv() WarmEnv {
	return WarmEnv{Snapshots: r.Snapshots, Traces: r.Traces}
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Jobs expands an experiment grid into its (point, rotation) job list in
// deterministic order: all rotations of point 0, then point 1, and so on.
func Jobs(e Experiment, o Opts) ([]Job, error) {
	o = o.Normalized()
	grid, err := e.Grid()
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, 0, len(grid)*o.Runs)
	for i, spec := range grid {
		for run := 0; run < o.Runs; run++ {
			jobs = append(jobs, Job{Experiment: e.Name, Point: i, Run: run, Spec: spec})
		}
	}
	return jobs, nil
}

// RunExperiment executes every job of the experiment across the worker pool
// and aggregates rotations into points. Results are identical for any
// worker count and any cache state: each job's seed depends only on its
// identity, and aggregation walks jobs in index order, so float summation
// order is fixed.
//
// Cancelling ctx stops the run between jobs (an in-flight simulation
// finishes its budget first, while jobs still waiting on the shared
// semaphore abandon the wait immediately) and returns ctx's error. A job
// that fails — only possible through a Dispatch error — cancels the rest
// of the run and surfaces the first such error.
func (r Runner) RunExperiment(ctx context.Context, e Experiment, o Opts) (*ExperimentResult, error) {
	o = o.Normalized()
	jobs, err := Jobs(e, o)
	if err != nil {
		return nil, err
	}
	results := make([]smt.Results, len(jobs))
	// One canonical seed derivation per rotation, hoisted to sweep setup:
	// result keys, snapshot keys, and trace builds all consume seeds[run]
	// instead of re-deriving it independently at every grid point.
	seeds := rotationSeeds(o)

	// runCtx lets the first failing job stop its siblings without waiting
	// for them to run their full budgets.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var (
		errOnce sync.Once
		jobErr  error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			jobErr = err
			cancelRun()
		})
	}

	workers := r.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if runCtx.Err() != nil {
					continue // drain without working; the feeder is stopping
				}
				res, err := r.runJob(runCtx, jobs[i], o, seeds[jobs[i].Run])
				if err != nil {
					fail(err)
					continue
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err // the caller's cancellation wins over derived job errors
	}
	if jobErr != nil {
		return nil, jobErr
	}

	return aggregate(e, o, jobs, results)
}

// runJob executes one job, consulting and feeding the cache, and reports
// completion through OnJobDone. The shared semaphore slot (when set)
// covers only the simulation itself: the cache lookup happens first, so a
// hit — or a wait on another runner's in-flight computation — never
// occupies a slot that a distinct job could use. On any failure path —
// semaphore wait cancelled, dispatch error — the job's cache leadership is
// released (see keyForgetter) before the error is returned.
func (r Runner) runJob(ctx context.Context, j Job, o Opts, seed uint64) (smt.Results, error) {
	var key string
	if r.Cache != nil {
		key = j.keyFor(o, seed)
		res, ok, err := r.cacheGet(ctx, key)
		if err != nil {
			return smt.Results{}, err // wait abandoned; no leadership taken
		}
		if ok {
			if r.OnJobDone != nil {
				r.OnJobDone(j, res, true)
			}
			return res, nil
		}
	}
	interval := r.Interval
	if interval < 0 {
		interval = 0 // tolerate nonsense the way Opts normalization does
	}
	var onSnap func(smt.Snapshot)
	if interval > 0 && r.OnSnapshot != nil {
		onSnap = func(s smt.Snapshot) { r.OnSnapshot(j, s) }
	}

	var res smt.Results
	if r.Dispatch != nil {
		var err error
		res, err = r.Dispatch.Dispatch(ctx, j, o, interval, onSnap)
		if err != nil {
			r.forget(key)
			return smt.Results{}, err
		}
	} else {
		if r.Sem != nil {
			// A cancelled run must not sit in the semaphore queue behind
			// other runners' long simulations — that both delays
			// RunExperiment's return and then burns a slot on a result
			// nobody wants.
			select {
			case r.Sem <- struct{}{}:
				defer func() { <-r.Sem }()
			case <-ctx.Done():
				r.forget(key)
				return smt.Results{}, ctx.Err()
			}
		}
		res = SimulateEnv(j.Spec.Config, j.Run, seed, o, interval, onSnap, r.warmEnv())
	}
	if r.Cache != nil {
		r.Cache.Put(key, res)
	}
	if r.OnJobDone != nil {
		r.OnJobDone(j, res, false)
	}
	return res, nil
}

// cacheGet looks a key up, using the cache's cancellable wait when it
// has one.
func (r Runner) cacheGet(ctx context.Context, key string) (smt.Results, bool, error) {
	if c, ok := r.Cache.(ctxJobCache); ok {
		return c.GetCtx(ctx, key)
	}
	res, ok := r.Cache.Get(key)
	return res, ok, nil
}

// forget releases the runner's leadership of a cache key it will never
// Put. A no-op for plain stores; required for leader-obligated caches
// (cache.Flight) whose waiters would otherwise block forever.
func (r Runner) forget(key string) {
	if key == "" || r.Cache == nil {
		return
	}
	if f, ok := r.Cache.(keyForgetter); ok {
		f.Forget(key)
	}
}

// aggregate folds per-job results into per-point averages and groups points
// into series in first-appearance order.
func aggregate(e Experiment, o Opts, jobs []Job, results []smt.Results) (*ExperimentResult, error) {
	out := &ExperimentResult{
		SchemaVersion: SchemaVersion,
		Experiment:    e.Name,
		Title:         e.Title,
		Opts:          o,
	}
	seriesIdx := map[string]int{}
	var cur *Point
	for i, j := range jobs {
		if j.Run == 0 {
			si, ok := seriesIdx[j.Spec.Series]
			if !ok {
				si = len(out.Series)
				seriesIdx[j.Spec.Series] = si
				out.Series = append(out.Series, SeriesResult{Name: j.Spec.Series})
			}
			out.Series[si].Points = append(out.Series[si].Points, Point{
				Label:   j.Spec.Label,
				Threads: j.Spec.Threads,
			})
			cur = &out.Series[si].Points[len(out.Series[si].Points)-1]
		}
		if cur == nil {
			return nil, fmt.Errorf("exp: job %d of %s has no point", i, e.Name)
		}
		cur.IPC += results[i].IPC
		cur.Results = results[i] // keep the last rotation, as Measure does
		if j.Run == o.Runs-1 {
			cur.IPC /= float64(o.Runs)
		}
	}
	return out, nil
}

// Run executes the named registry experiment. It is the engine's main entry
// point: cmd/experiments, the benchmarks, and the legacy figure helpers all
// come through here.
func Run(name string, o Opts, workers int) (*ExperimentResult, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	return Runner{Workers: workers}.RunExperiment(context.Background(), e, o)
}

// mustRun runs a registry experiment whose grid is known statically valid;
// the legacy figure helpers use it to keep their panic-free signatures.
// Serial on purpose: the pre-engine helpers ran serially, and the
// long-standing benchmarks wrapping them (bench_test.go) must keep timing
// simulator work, not a host-dependent worker pool — output bytes are
// identical either way.
func mustRun(name string, o Opts) *ExperimentResult {
	res, err := Run(name, o, 1)
	if err != nil {
		panic(err)
	}
	return res
}
