package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/smt"
)

// Job is one simulation of an experiment grid: point Point of the grid run
// at benchmark rotation Run. Jobs are independent, so the runner may execute
// them in any order on any worker; JobSeed ties the workload stream to the
// job's rotation rather than its schedule, which is what makes parallel
// output bit-identical to serial output.
type Job struct {
	Experiment string
	Point      int
	Run        int
	Spec       PointSpec
}

// JobSeed derives the deterministic workload seed for a job. It depends
// only on the base seed and the rotation index — deliberately NOT on the
// experiment name or point index — so every configuration in a grid runs
// the exact same workload streams per rotation (the paper's paired
// methodology: IPC deltas between points isolate the machine change, not
// the workload draw) and so engine numbers match Measure for the same
// config. Schedule independence alone is what parallel determinism needs.
func JobSeed(base uint64, run int) uint64 {
	return base + uint64(run)
}

// Key returns the job's content address: everything that determines its
// smt.Results — the machine configuration's fingerprint, the rotation, the
// derived workload seed, and the measurement budgets. Experiment and point
// identity are deliberately excluded (they do not affect the simulation),
// so the same configuration appearing in two different grids shares one
// cache entry.
func (j Job) Key(o Opts) string {
	o = o.Normalized()
	return fmt.Sprintf("%s:r%d:s%d:w%d:m%d",
		j.Spec.Config.Fingerprint(), j.Run, JobSeed(o.Seed, j.Run), o.Warmup, o.Measure)
}

// JobCache is the pluggable per-job result store the runner consults
// before simulating. Implementations must be safe for concurrent use; the
// content-addressed LRU store in internal/cache satisfies this interface
// as cache.Store[smt.Results].
type JobCache interface {
	Get(key string) (smt.Results, bool)
	Put(key string, r smt.Results)
}

// runOne is the shared measurement kernel: build the machine, warm it, and
// measure — as one streaming run session. Every path into the simulator
// (serial Measure, parallel runner) funnels through here so budgets and
// methodology cannot drift apart. interval > 0 forwards per-interval
// snapshots to onSnap while the simulation advances; the streamed final
// results are byte-identical to a blocking run, so streaming is invisible
// to callers that only consume the return value.
func runOne(cfg smt.Config, rotate int, seed uint64, o Opts, interval int64, onSnap func(smt.Snapshot)) smt.Results {
	spec := smt.WorkloadMix(cfg.Threads, rotate, seed)
	sim := smt.MustNew(cfg, spec)
	warmup := o.Warmup
	if warmup < 0 {
		warmup = 0 // historical behavior: a negative warmup skips warmup
	}
	sess, err := sim.Start(context.Background(), smt.RunSpec{
		Warmup:         warmup * int64(cfg.Threads),
		Instructions:   o.Measure * int64(cfg.Threads),
		IntervalCycles: interval,
	})
	if err != nil {
		panic(err) // unreachable: the simulator is freshly built and idle
	}
	for snap := range sess.Snapshots() {
		if onSnap != nil {
			onSnap(snap)
		}
	}
	res, _ := sess.Finish()
	return res
}

// Runner executes experiment grids across a bounded worker pool.
type Runner struct {
	// Workers is the pool size; <=0 means runtime.GOMAXPROCS(0).
	Workers int

	// Cache, when non-nil, is consulted per job before simulating and
	// updated after. Because jobs are deterministic functions of their
	// content address, a cache hit returns exactly the bytes a fresh
	// simulation would, so cached and uncached runs stay byte-identical.
	Cache JobCache

	// OnJobDone, when non-nil, observes every job completion with its
	// results and whether they came from Cache. It is called from worker
	// goroutines, possibly concurrently and in any order; implementations
	// must synchronize their own state.
	OnJobDone func(j Job, r smt.Results, fromCache bool)

	// Interval, when positive, streams interval snapshots from every
	// simulated job: the job runs as a streaming session emitting a
	// smt.Snapshot every Interval cycles, each forwarded to OnSnapshot.
	// Cache hits produce no snapshots (nothing simulates). Streaming never
	// changes results — a job's final streamed results are byte-identical
	// to its blocking results.
	Interval int64

	// OnSnapshot, when non-nil (and Interval is positive), observes every
	// interval snapshot of every simulating job. Like OnJobDone it is
	// called from worker goroutines; implementations must synchronize.
	OnSnapshot func(j Job, s smt.Snapshot)

	// Sem, when non-nil, is a counting semaphore bounding concurrent
	// simulations across every Runner sharing it. A multi-tenant caller
	// (the smtd service runs one Runner per sweep) sizes it once so N
	// concurrent sweeps cannot oversubscribe the machine N-fold. A slot is
	// acquired only after a cache miss — cache hits, and waiters blocked on
	// another runner's in-flight computation of the same key, consume no
	// slot.
	Sem chan struct{}
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Jobs expands an experiment grid into its (point, rotation) job list in
// deterministic order: all rotations of point 0, then point 1, and so on.
func Jobs(e Experiment, o Opts) ([]Job, error) {
	o = o.Normalized()
	grid, err := e.Grid()
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, 0, len(grid)*o.Runs)
	for i, spec := range grid {
		for run := 0; run < o.Runs; run++ {
			jobs = append(jobs, Job{Experiment: e.Name, Point: i, Run: run, Spec: spec})
		}
	}
	return jobs, nil
}

// RunExperiment executes every job of the experiment across the worker pool
// and aggregates rotations into points. Results are identical for any
// worker count and any cache state: each job's seed depends only on its
// identity, and aggregation walks jobs in index order, so float summation
// order is fixed.
//
// Cancelling ctx stops the run between jobs (an in-flight simulation
// finishes its budget first) and returns ctx's error.
func (r Runner) RunExperiment(ctx context.Context, e Experiment, o Opts) (*ExperimentResult, error) {
	o = o.Normalized()
	jobs, err := Jobs(e, o)
	if err != nil {
		return nil, err
	}
	results := make([]smt.Results, len(jobs))

	workers := r.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain without working; the feeder is stopping
				}
				results[i] = r.runJob(jobs[i], o)
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	return aggregate(e, o, jobs, results)
}

// runJob executes one job, consulting and feeding the cache, and reports
// completion through OnJobDone. The shared semaphore slot (when set)
// covers only the simulation itself: the cache lookup happens first, so a
// hit — or a wait on another runner's in-flight computation — never
// occupies a slot that a distinct job could use.
func (r Runner) runJob(j Job, o Opts) smt.Results {
	var key string
	if r.Cache != nil {
		key = j.Key(o)
		if res, ok := r.Cache.Get(key); ok {
			if r.OnJobDone != nil {
				r.OnJobDone(j, res, true)
			}
			return res
		}
	}
	if r.Sem != nil {
		r.Sem <- struct{}{}
		defer func() { <-r.Sem }()
	}
	interval := r.Interval
	if interval < 0 {
		interval = 0 // tolerate nonsense the way Opts normalization does
	}
	var onSnap func(smt.Snapshot)
	if interval > 0 && r.OnSnapshot != nil {
		onSnap = func(s smt.Snapshot) { r.OnSnapshot(j, s) }
	}
	res := runOne(j.Spec.Config, j.Run, JobSeed(o.Seed, j.Run), o, interval, onSnap)
	if r.Cache != nil {
		r.Cache.Put(key, res)
	}
	if r.OnJobDone != nil {
		r.OnJobDone(j, res, false)
	}
	return res
}

// aggregate folds per-job results into per-point averages and groups points
// into series in first-appearance order.
func aggregate(e Experiment, o Opts, jobs []Job, results []smt.Results) (*ExperimentResult, error) {
	out := &ExperimentResult{
		SchemaVersion: SchemaVersion,
		Experiment:    e.Name,
		Title:         e.Title,
		Opts:          o,
	}
	seriesIdx := map[string]int{}
	var cur *Point
	for i, j := range jobs {
		if j.Run == 0 {
			si, ok := seriesIdx[j.Spec.Series]
			if !ok {
				si = len(out.Series)
				seriesIdx[j.Spec.Series] = si
				out.Series = append(out.Series, SeriesResult{Name: j.Spec.Series})
			}
			out.Series[si].Points = append(out.Series[si].Points, Point{
				Label:   j.Spec.Label,
				Threads: j.Spec.Threads,
			})
			cur = &out.Series[si].Points[len(out.Series[si].Points)-1]
		}
		if cur == nil {
			return nil, fmt.Errorf("exp: job %d of %s has no point", i, e.Name)
		}
		cur.IPC += results[i].IPC
		cur.Results = results[i] // keep the last rotation, as Measure does
		if j.Run == o.Runs-1 {
			cur.IPC /= float64(o.Runs)
		}
	}
	return out, nil
}

// Run executes the named registry experiment. It is the engine's main entry
// point: cmd/experiments, the benchmarks, and the legacy figure helpers all
// come through here.
func Run(name string, o Opts, workers int) (*ExperimentResult, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	return Runner{Workers: workers}.RunExperiment(context.Background(), e, o)
}

// mustRun runs a registry experiment whose grid is known statically valid;
// the legacy figure helpers use it to keep their panic-free signatures.
// Serial on purpose: the pre-engine helpers ran serially, and the
// long-standing benchmarks wrapping them (bench_test.go) must keep timing
// simulator work, not a host-dependent worker pool — output bytes are
// identical either way.
func mustRun(name string, o Opts) *ExperimentResult {
	res, err := Run(name, o, 1)
	if err != nil {
		panic(err)
	}
	return res
}
