package exp

import (
	"fmt"

	"repro/smt"
)

// PointSpec is one machine configuration the engine measures: a cell of an
// experiment's grid before rotation fan-out. Series groups points into the
// lines of a figure or the row groups of a table.
type PointSpec struct {
	Series  string
	Label   string
	Threads int
	Config  smt.Config
}

// Shape declares how many series and total points an experiment's grid is
// expected to produce; the registry test and the runner validate it so a
// registry edit that silently drops a configuration fails loudly.
type Shape struct {
	Series int
	Points int
}

// Experiment is one named entry of the registry: a paper table or figure,
// its config generator, and the expected shape of its grid.
type Experiment struct {
	Name   string
	Title  string
	Points func() []PointSpec
	Shape  Shape
}

// Grid materializes the experiment's point list and checks it against the
// declared shape.
func (e Experiment) Grid() ([]PointSpec, error) {
	pts := e.Points()
	series := map[string]bool{}
	for _, p := range pts {
		series[p.Series] = true
	}
	if len(series) != e.Shape.Series || len(pts) != e.Shape.Points {
		return nil, fmt.Errorf("exp: %s grid is %d series / %d points, registry declares %d / %d",
			e.Name, len(series), len(pts), e.Shape.Series, e.Shape.Points)
	}
	return pts, nil
}

// registry holds the experiments in registration order; order is part of the
// engine's deterministic output contract.
var (
	registryOrder []string
	registryByKey = map[string]Experiment{}
)

// Register adds an experiment to the registry. It panics on duplicate or
// empty names; registration happens from package init only.
func Register(e Experiment) {
	if e.Name == "" || e.Points == nil {
		panic("exp: Register needs a name and a Points generator")
	}
	if _, dup := registryByKey[e.Name]; dup {
		panic("exp: duplicate experiment " + e.Name)
	}
	registryByKey[e.Name] = e
	registryOrder = append(registryOrder, e.Name)
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	e, ok := registryByKey[name]
	return e, ok
}

// Experiments returns all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registryOrder))
	for _, name := range registryOrder {
		out = append(out, registryByKey[name])
	}
	return out
}

// Names returns the registered experiment names in registration order.
func Names() []string {
	return append([]string(nil), registryOrder...)
}
