package exp

import (
	"context"
	"strings"
	"testing"

	"repro/smt"
)

// TestCustomPredictorSweepsAndCaches registers a trivial custom predictor
// and sweeps it against gshare through the engine: predictor names must
// flow into distinct cache keys, and the custom series must produce
// throughput like a built-in's.
func TestCustomPredictorSweepsAndCaches(t *testing.T) {
	// Registration is global and permanent; the name is unique to this test.
	err := smt.RegisterPredictor("test_expsweep_alwaystaken",
		func(cfg smt.BranchConfig) (smt.BranchPredictor, error) {
			return smt.NewComposedPredictor(cfg, alwaysTaken{})
		})
	if err != nil {
		t.Fatal(err)
	}

	e, err := PredictorComparison([]string{"gshare", "test_expsweep_alwaystaken"}, "", "", 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	o := Opts{Runs: 1, Warmup: 500, Measure: 1_000, Seed: 1}
	jobs, err := Jobs(e, o)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, j := range jobs {
		k := j.Key(o)
		if keys[k] {
			t.Fatalf("duplicate cache key %s", k)
		}
		keys[k] = true
	}

	res, err := Runner{Workers: 2}.RunExperiment(context.Background(), e, o)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Lookup("test_expsweep_alwaystaken")
	if len(pts) == 0 {
		t.Fatal("custom predictor series missing")
	}
	for _, p := range pts {
		if p.IPC <= 0 {
			t.Errorf("custom predictor point %s/%d has IPC %v", p.Label, p.Threads, p.IPC)
		}
	}
}

// alwaysTaken predicts every conditional branch taken with no confidence.
type alwaysTaken struct{}

func (alwaysTaken) Predict(history uint32, pc int64) (bool, bool) { return true, false }
func (alwaysTaken) Update(history uint32, pc int64, taken bool)   {}

// TestPredictorComparisonValidates pins the up-front validation: unknown
// names fail with the registered menu in the message, before any job runs.
func TestPredictorComparisonValidates(t *testing.T) {
	_, err := PredictorComparison([]string{"NOPE"}, "", "", 4, 2, 8)
	if err == nil || !strings.Contains(err.Error(), "gshare") {
		t.Errorf("unknown predictor error should list valid names, got %v", err)
	}
	if _, err := PredictorComparison(nil, "", "", 4, 2, 8); err == nil {
		t.Error("empty predictor list accepted")
	}
	if _, err := PredictorComparison([]string{"gshare", "gshare"}, "", "", 4, 2, 8); err == nil {
		t.Error("duplicate predictor accepted")
	}
	if _, err := PredictorComparison([]string{"gshare"}, "NOT_REGISTERED", "", 4, 2, 8); err == nil {
		t.Error("unknown fetch policy accepted")
	}
	if _, err := PredictorComparison([]string{"gshare"}, "", "NOT_REGISTERED", 4, 2, 8); err == nil {
		t.Error("unknown issue policy accepted")
	}
}
