package exp

import (
	"fmt"

	"repro/smt"
)

// PolicyComparison builds an ad-hoc experiment comparing registered fetch
// policies head-to-head under one issue policy and one num1.num2 fetch
// partitioning, across the paper's standard thread counts up to
// maxThreads. It is how custom (caller-registered) policies enter the
// engine without a registry preset: one series per fetch policy, the
// paper's paired methodology (shared rotations and seeds per point)
// applying as in every other experiment, and every job content-addressed
// by policy name through the usual cache key.
func PolicyComparison(fetch []string, issue string, maxThreads, num1, num2 int) (Experiment, error) {
	if len(fetch) == 0 {
		return Experiment{}, fmt.Errorf("exp: policy comparison needs at least one fetch policy")
	}
	if maxThreads < 1 {
		return Experiment{}, fmt.Errorf("exp: policy comparison maxThreads = %d, want >= 1", maxThreads)
	}
	if num1 < 1 || num2 < 1 {
		return Experiment{}, fmt.Errorf("exp: policy comparison fetch partitioning %d.%d, both must be >= 1", num1, num2)
	}
	if issue == "" {
		issue = string(smt.IssueOldestFirst)
	}
	if _, ok := smt.LookupIssuePolicy(issue); !ok {
		return Experiment{}, fmt.Errorf("exp: unknown issue policy %q (registered: %v)", issue, smt.IssuePolicies())
	}
	seen := map[string]bool{}
	for _, name := range fetch {
		if _, ok := smt.LookupFetchPolicy(name); !ok {
			return Experiment{}, fmt.Errorf("exp: unknown fetch policy %q (registered: %v)", name, smt.FetchPolicies())
		}
		if seen[name] {
			return Experiment{}, fmt.Errorf("exp: fetch policy %q listed twice", name)
		}
		seen[name] = true
	}
	// The paper's standard sweep points up to (and always including) the
	// requested maximum, so asking for e.g. 5 contexts measures 5 contexts.
	threads := make([]int, 0, len(ThreadCounts)+1)
	for _, t := range ThreadCounts {
		if t < maxThreads {
			threads = append(threads, t)
		}
	}
	threads = append(threads, maxThreads)
	fetchNames := append([]string(nil), fetch...)
	mk := func(name string, t int) smt.Config {
		cfg, err := FetchSchemeConfig(t, name, num1, num2)
		if err != nil {
			panic(err) // unreachable: names validated above
		}
		cfg.IssuePolicy = smt.IssueAlg(issue)
		return cfg
	}
	return Experiment{
		Name:  "adhoc",
		Title: fmt.Sprintf("ad-hoc fetch policy comparison (%d policies, issue %s)", len(fetchNames), issue),
		Shape: Shape{Series: len(fetchNames), Points: len(fetchNames) * len(threads)},
		Points: func() []PointSpec {
			pts := make([]PointSpec, 0, len(fetchNames)*len(threads))
			for _, name := range fetchNames {
				series := fmt.Sprintf("%s.%d.%d", name, num1, num2)
				pts = append(pts, seriesOf(series, threads, func(t int) smt.Config {
					return mk(name, t)
				})...)
			}
			return pts
		},
	}, nil
}
