package exp

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/smt"
)

// Interval streaming must be an observation layer only: a runner streaming
// snapshots produces byte-identical experiment results to one that does
// not, and every simulated (non-cached) job emits at least one snapshot
// whose final cumulative results match the job's reported results.
func TestRunnerIntervalStreaming(t *testing.T) {
	e, ok := Lookup("table3")
	if !ok {
		t.Fatal("table3 missing")
	}
	o := tinyOpts()

	plain, err := Runner{Workers: 2}.RunExperiment(context.Background(), e, o)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	type key struct{ point, run int }
	finals := map[key]smt.Results{}
	counts := map[key]int{}
	streamed, err := Runner{
		Workers:  2,
		Interval: 200,
		OnSnapshot: func(j Job, s smt.Snapshot) {
			mu.Lock()
			defer mu.Unlock()
			k := key{j.Point, j.Run}
			counts[k]++
			if s.Done {
				finals[k] = s.Cumulative
			}
		},
	}.RunExperiment(context.Background(), e, o)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := plain.EncodeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := streamed.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("streaming changed experiment result bytes")
	}

	jobs, err := Jobs(e, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != len(jobs) {
		t.Fatalf("final snapshots for %d jobs, want %d", len(finals), len(jobs))
	}
	for k, n := range counts {
		if n < 2 {
			t.Errorf("job %+v emitted %d snapshots, want interval + final", k, n)
		}
	}
}

// A custom fetch policy registered through the public smt API must sweep
// through the engine like a built-in, with its jobs content-addressed by
// policy name (distinct from every built-in's cache key).
func TestCustomPolicySweepsAndCaches(t *testing.T) {
	// Registration is global and permanent; the name is unique to this test.
	err := smt.RegisterFetchPolicy(smt.FetchPolicyFunc("TEST_EXPSWEEP_HYBRID",
		func(a, b smt.ThreadFeedback) bool {
			sa, sb := a.ICount+a.BrCount, b.ICount+b.BrCount
			return sa < sb
		}, false))
	if err != nil {
		t.Fatal(err)
	}

	e, err := PolicyComparison([]string{"ICOUNT", "TEST_EXPSWEEP_HYBRID"}, "", 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	o := Opts{Runs: 1, Warmup: 500, Measure: 1_000, Seed: 1}
	jobs, err := Jobs(e, o)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, j := range jobs {
		k := j.Key(o)
		if keys[k] {
			t.Fatalf("duplicate cache key %s", k)
		}
		keys[k] = true
	}

	res, err := Runner{Workers: 2}.RunExperiment(context.Background(), e, o)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Lookup("TEST_EXPSWEEP_HYBRID.2.8")
	if len(pts) == 0 {
		t.Fatalf("custom policy series missing; have %v", func() []string {
			var names []string
			for _, s := range res.Series {
				names = append(names, s.Name)
			}
			return names
		}())
	}
	for _, p := range pts {
		if p.IPC <= 0 {
			t.Errorf("custom policy point %s/%d has IPC %v", p.Label, p.Threads, p.IPC)
		}
	}

	if _, err := PolicyComparison([]string{"NOT_REGISTERED"}, "", 4, 2, 8); err == nil {
		t.Error("unknown fetch policy accepted")
	}
	if _, err := PolicyComparison([]string{"ICOUNT"}, "NOT_REGISTERED", 4, 2, 8); err == nil {
		t.Error("unknown issue policy accepted")
	}
}
