package exp

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestParallelSpeedup guards the engine's reason to exist: on a multi-core
// machine the worker pool must actually run jobs concurrently. The fig4
// grid is 20 points x 2 rotations = 40 independent simulations; with >= 4
// cores even a conservative 1.25x bar catches a Runner that silently
// serializes (determinism and golden tests cannot — output is identical
// either way). Skipped on small machines where no speedup is possible.
func TestParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup bound, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test, skipped in -short mode")
	}
	e, _ := Lookup("fig4")
	o := Opts{Runs: 2, Warmup: 2_000, Measure: 5_000, Seed: 1}

	measure := func(workers int) time.Duration {
		start := time.Now()
		if _, err := (Runner{Workers: workers}).RunExperiment(context.Background(), e, o); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure(0) // warm caches and the scheduler before timing

	// Best of three: shared CI runners are noisy, and one clean pass is
	// enough to prove the pool is not serializing.
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		serial := measure(1)
		parallel := measure(0)
		speedup := float64(serial) / float64(parallel)
		t.Logf("attempt %d: serial %v, parallel %v, speedup %.2fx on %d CPUs",
			attempt, serial, parallel, speedup, runtime.NumCPU())
		if speedup > best {
			best = speedup
		}
		if best >= 1.25 {
			return
		}
	}
	t.Errorf("parallel runner shows no speedup: best %.2fx over 3 attempts", best)
}
