package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/policy"
	"repro/internal/snapshot"
)

// policyPairOpts are the frozen budgets behind the policy-pair hash file.
// Small on purpose: the sweep runs every built-in fetch x issue pair.
func policyPairOpts() Opts {
	return Opts{Runs: 1, Warmup: 1_000, Measure: 2_000, Seed: 1}
}

// TestPolicyPairFingerprints pins the Results fingerprint of every
// registered built-in fetch x issue policy pair to the values committed in
// testdata/policy_pairs.golden.json. The golden file extends the frozen-hash
// pattern from the policy-registry redesign one level up: not just "policy
// names still content-address identically" but "every selector still
// simulates identically, cycle for cycle". Hot-path rewrites that must not
// change modeled behavior — sort replacements on the issue and fetch paths,
// scratch-buffer reuse, event-ring changes — are verified against it.
//
// Refresh after an intentional simulator change with:
//
//	go test ./internal/exp -run PolicyPairFingerprints -update
func TestPolicyPairFingerprints(t *testing.T) {
	fetches := policy.FetchNames()
	issues := policy.IssueNames()
	sort.Strings(fetches)
	sort.Strings(issues)

	o := policyPairOpts()
	got := make(map[string]string, len(fetches)*len(issues))
	type result struct {
		pair, hash string
	}
	ch := make(chan result)
	for _, f := range fetches {
		for _, is := range issues {
			f, is := f, is
			go func() {
				cfg := MustFetchScheme(4, f, 2, 8)
				cfg.IssuePolicy = policy.IssueAlg(is)
				res := Simulate(cfg, 0, o.Seed, o, 0, nil)
				ch <- result{f + "/" + is, fingerprint.Of(res)}
			}()
		}
	}
	for i := 0; i < len(fetches)*len(issues); i++ {
		r := <-ch
		got[r.pair] = r.hash
	}

	path := filepath.Join("testdata", "policy_pairs.golden.json")
	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for pair, h := range got {
		if want[pair] == "" {
			t.Errorf("pair %s missing from %s (new policy? rerun with -update)", pair, path)
			continue
		}
		if h != want[pair] {
			t.Errorf("pair %s: Results fingerprint drifted: got %s want %s", pair, h, want[pair])
		}
	}
	for pair := range want {
		if _, ok := got[pair]; !ok {
			t.Errorf("pair %s in %s no longer registered", pair, path)
		}
	}
}

// TestPolicyPairFingerprintsWarm re-runs the frozen-hash sweep through the
// acceleration layers — pre-decoded trace replay plus warmup checkpoints,
// with a second pass that restores every pair's warmup from the shared
// store — and pins the results to the SAME golden hashes as the cold sweep.
// This is the subsystem's acceptance gate: checkpointing and replay must be
// invisible in every simulated bit across every built-in policy pair.
func TestPolicyPairFingerprintsWarm(t *testing.T) {
	if *update {
		t.Skip("golden file is owned by TestPolicyPairFingerprints")
	}
	raw, err := os.ReadFile(filepath.Join("testdata", "policy_pairs.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	fetches := policy.FetchNames()
	issues := policy.IssueNames()
	sort.Strings(fetches)
	sort.Strings(issues)
	o := policyPairOpts()
	pairs := len(fetches) * len(issues)

	store := snapshot.NewStore(newMapSnapshots())
	env := WarmEnv{Snapshots: store, Traces: snapshot.NewTraceCache(0)}

	// Pass 1 fills the snapshot store cold; pass 2 restores every warmup.
	// Both passes must reproduce the frozen hashes exactly.
	for pass := 0; pass < 2; pass++ {
		type result struct {
			pair, hash string
		}
		ch := make(chan result)
		for _, f := range fetches {
			for _, is := range issues {
				f, is := f, is
				go func() {
					cfg := MustFetchScheme(4, f, 2, 8)
					cfg.IssuePolicy = policy.IssueAlg(is)
					res := SimulateEnv(cfg, 0, o.Seed, o, 0, nil, env)
					ch <- result{f + "/" + is, fingerprint.Of(res)}
				}()
			}
		}
		for i := 0; i < pairs; i++ {
			r := <-ch
			if want[r.pair] == "" {
				t.Errorf("pass %d: pair %s missing from golden file", pass, r.pair)
				continue
			}
			if r.hash != want[r.pair] {
				t.Errorf("pass %d: pair %s drifted under checkpoint+replay: got %s want %s",
					pass, r.pair, r.hash, want[r.pair])
			}
		}
	}
	st := store.Stats()
	if st.Misses != int64(pairs) || st.Puts != int64(pairs) || st.Hits != int64(pairs) {
		t.Errorf("store stats = %+v, want %d cold fills then %d restores", st, pairs, pairs)
	}
	if ts := env.Traces.Stats(); ts.Builds != 1 {
		t.Errorf("trace cache stats = %+v, want one shared rotation build", ts)
	}
}
