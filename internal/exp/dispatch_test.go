package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/smt"
)

// dispatcherFunc adapts a function to the Dispatcher interface.
type dispatcherFunc func(ctx context.Context, j Job, o Opts, interval int64, onSnap func(smt.Snapshot)) (smt.Results, error)

func (f dispatcherFunc) Dispatch(ctx context.Context, j Job, o Opts, interval int64, onSnap func(smt.Snapshot)) (smt.Results, error) {
	return f(ctx, j, o, interval, onSnap)
}

// TestDispatcherByteIdentical: routing jobs through a Dispatcher that
// runs the canonical kernel must not change result bytes — the seam the
// distributed coordinator plugs into.
func TestDispatcherByteIdentical(t *testing.T) {
	e, _ := Lookup("fig7")
	o := tinyOpts()
	local, err := Runner{Workers: 2}.RunExperiment(context.Background(), e, o)
	if err != nil {
		t.Fatal(err)
	}
	viaDispatch, err := Runner{
		Workers: 3,
		Dispatch: dispatcherFunc(func(ctx context.Context, j Job, o Opts, interval int64, onSnap func(smt.Snapshot)) (smt.Results, error) {
			return Simulate(j.Spec.Config, j.Run, JobSeed(o.Seed, j.Run), o, interval, onSnap), nil
		}),
	}.RunExperiment(context.Background(), e, o)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := encodeResult(t, local), encodeResult(t, viaDispatch); a != b {
		t.Fatalf("dispatcher changed result bytes\nlocal:\n%s\ndispatched:\n%s", a, b)
	}
}

func encodeResult(t *testing.T, r *ExperimentResult) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestDispatchErrorFailsSweepAndReleasesFlight: a dispatch failure must
// surface as the sweep's error, stop the remaining jobs, and release the
// failed job's singleflight leadership so a later run of the same key
// does not deadlock behind a Put that will never come.
func TestDispatchErrorFailsSweepAndReleasesFlight(t *testing.T) {
	e, _ := Lookup("fig7")
	o := tinyOpts()
	flight := cache.NewFlight[smt.Results](cache.New[smt.Results](0))
	boom := errors.New("backend exploded")
	r := Runner{
		Workers: 2,
		Cache:   flight,
		Dispatch: dispatcherFunc(func(ctx context.Context, j Job, o Opts, interval int64, onSnap func(smt.Snapshot)) (smt.Results, error) {
			return smt.Results{}, boom
		}),
	}
	if _, err := r.RunExperiment(context.Background(), e, o); !errors.Is(err, boom) {
		t.Fatalf("sweep error = %v, want %v", err, boom)
	}
	// The same keys must be computable again: if leadership leaked, this
	// second run blocks forever on Flight.Get.
	ok := Runner{Workers: 2, Cache: flight}
	done := make(chan error, 1)
	go func() {
		_, err := ok.RunExperiment(context.Background(), e, o)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("re-run deadlocked: failed dispatch leaked flight leadership")
	}
}

// TestRunnerCancelPromptWithSharedSem is the goroutine-leak regression
// test: a sweep cancelled while its jobs queue on the shared semaphore
// must return promptly (not wait for slots held by other tenants) and
// must not leave worker goroutines parked on the semaphore send.
func TestRunnerCancelPromptWithSharedSem(t *testing.T) {
	before := runtime.NumGoroutine()

	sem := make(chan struct{}, 1)
	sem <- struct{}{} // another tenant owns the only slot for the whole test

	e, _ := Lookup("fig7")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Runner{Workers: 4, Sem: sem}.RunExperiment(ctx, e, tinyOpts())
		done <- err
	}()
	// Let the pool park on the semaphore, then cancel.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunExperiment never returned: workers are stuck in the semaphore queue")
	}

	// Every goroutine the run spawned must be gone — without the
	// select-on-ctx acquire they would still be parked on `sem <-`.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak after cancelled run: %d before, %d after", before, n)
	}
}

// TestRunnerCancelDuringSimulationDrains: cancellation mid-simulation
// (no semaphore involved) also returns and leaves no goroutines behind;
// in-flight jobs finish their budgets first by design.
func TestRunnerCancelDuringSimulationDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	done := make(chan error, 1)
	e, _ := Lookup("fig7")
	go func() {
		_, err := Runner{
			Workers:  2,
			Interval: 50,
			OnSnapshot: func(j Job, s smt.Snapshot) {
				select {
				case started <- struct{}{}:
				default:
				}
			},
		}.RunExperiment(ctx, e, Opts{Runs: 2, Warmup: 500, Measure: 5_000, Seed: 1})
		done <- err
	}()
	<-started // at least one job is mid-simulation
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("RunExperiment never returned after mid-simulation cancel")
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak after mid-simulation cancel: %d before, %d after", before, n)
	}
}

// TestJobPayloadFields pins what Simulate may depend on: two jobs that
// agree on config, rotation, seed, and budgets must produce identical
// results regardless of experiment/point identity — the property that
// lets the distributed payload omit them.
func TestJobPayloadFields(t *testing.T) {
	cfg := ICount28(2)
	o := tinyOpts().Normalized()
	a := Simulate(cfg, 1, JobSeed(o.Seed, 1), o, 0, nil)
	b := Simulate(cfg, 1, JobSeed(o.Seed, 1), o, 0, nil)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("Simulate is not a pure function of (config, rotation, seed, budgets)")
	}
}
