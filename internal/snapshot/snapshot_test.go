package snapshot

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/smt"
)

func TestKeyShape(t *testing.T) {
	key := Key("fp123", 3, 7, 30000)
	want := fmt.Sprintf("snap:v%d:fp123:r3:s7:w30000", smt.SnapshotVersion)
	if key != want {
		t.Fatalf("Key = %q, want %q", key, want)
	}
	if !strings.HasPrefix(key, KeyPrefix) {
		t.Fatalf("Key %q does not carry the routing prefix %q", key, KeyPrefix)
	}
	// The measure budget must never appear in the key: excluding it is
	// what lets every measure-budget variant of a sweep share checkpoints.
	if strings.Contains(key, "m") {
		t.Fatalf("Key %q appears to encode a measure budget", key)
	}
}

// mapBacking is the simplest Backing: an unbounded map.
type mapBacking struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (b *mapBacking) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok
}

func (b *mapBacking) Put(key string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = data
}

func TestStoreCountsTraffic(t *testing.T) {
	s := NewStore(&mapBacking{m: map[string][]byte{}})
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store served a hit")
	}
	s.Put("a", []byte("12345"))
	got, ok := s.Get("a")
	if !ok || string(got) != "12345" {
		t.Fatalf("Get after Put = %q, %v", got, ok)
	}
	st := s.Stats()
	want := Stats{Hits: 1, Misses: 1, Puts: 1, BytesLoaded: 5, BytesStored: 5}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

func TestTraceCacheSharesBuilds(t *testing.T) {
	c := NewTraceCache(0)
	spec := smt.WorkloadMix(2, 0, 1)
	const goroutines = 8
	var wg sync.WaitGroup
	sets := make([]*smt.TraceSet, goroutines)
	for i := range sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts, err := c.Get(spec, 2000)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			sets[i] = ts
		}(i)
	}
	wg.Wait()
	for i, ts := range sets {
		if ts != sets[0] {
			t.Fatalf("goroutine %d got a different trace set pointer; builds are not shared", i)
		}
	}
	st := c.Stats()
	if st.Builds != 1 || st.Reuses != goroutines-1 || st.Entries != 1 {
		t.Fatalf("Stats = %+v, want 1 build shared by %d reuses", st, goroutines-1)
	}
	if st.Bytes <= 0 {
		t.Fatalf("Stats.Bytes = %d, want positive byte accounting", st.Bytes)
	}
}

func TestTraceCacheEvictsToBudget(t *testing.T) {
	probe, err := smt.BuildTraceSet(smt.WorkloadMix(2, 0, 1), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Budget for roughly one rotation's set, so a second rotation evicts
	// the first.
	c := NewTraceCache(probe.Bytes() + probe.Bytes()/2)
	for rot := 0; rot < 2; rot++ {
		if _, err := c.Get(smt.WorkloadMix(2, rot, 1), 1000); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Entries != 1 {
		t.Fatalf("Stats = %+v, want the over-budget rotation evicted down to 1 entry", st)
	}
	if st.Bytes > probe.Bytes()*2 {
		t.Fatalf("Stats.Bytes = %d exceeds budget after eviction", st.Bytes)
	}
	// The survivor must be the most recently used rotation.
	if _, err := c.Get(smt.WorkloadMix(2, 1, 1), 1000); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Builds != 2 {
		t.Fatalf("Builds = %d after re-fetching the survivor, want 2 (no rebuild)", got.Builds)
	}
}
