// Package snapshot accelerates experiment sweeps with two shared,
// determinism-preserving layers:
//
//   - Warmup checkpoints: the complete warmed machine state of one
//     (config, rotation, seed, warmup) point, serialized by
//     smt.Simulator.SaveSnapshot and stored content-addressed under a Key.
//     Every grid point sharing the prefix restores instead of re-warming;
//     tiering the backing store through internal/cache (memory, disk,
//     federation peers) extends the reuse to distributed workers and
//     restarted coordinators.
//
//   - Trace replay: each workload rotation pre-decoded once per sweep into
//     an immutable smt.TraceSet shared read-only by every configuration
//     and goroutine (see TraceCache), replacing the per-run walker in the
//     fetch hot path.
//
// Both layers are byte-identical by construction: a restored or replayed
// run commits exactly the cycles a cold run would, so acceleration never
// changes result bytes — the same property the result cache leans on.
package snapshot

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/smt"
)

// KeyPrefix marks snapshot entries in a keyspace shared with simulation
// results (smtd's /v1/cache/{key} endpoint routes on it).
const KeyPrefix = "snap:"

// Key derives the content address of one warmup checkpoint. The
// fingerprint is the FULL configuration fingerprint — warmed state depends
// on every configuration field — and the serialization version is baked
// in so a format change misses instead of failing restores.
func Key(fingerprint string, rotation int, seed uint64, warmup int64) string {
	return fmt.Sprintf("%sv%d:%s:r%d:s%d:w%d", KeyPrefix, smt.SnapshotVersion, fingerprint, rotation, seed, warmup)
}

// Backing is the tier stack a Store counts on top of: the internal/cache
// stores ([]byte-typed Store, Tiered, Federated, Remote) all satisfy it.
type Backing interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte)
}

// Stats snapshots a Store's effectiveness counters.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	BytesLoaded int64 `json:"bytes_loaded"` // snapshot bytes served by Get hits
	BytesStored int64 `json:"bytes_stored"` // snapshot bytes written by Put
}

// Store counts snapshot traffic over a backing tier stack. It satisfies
// the experiment runner's SnapshotStore seam; corrupt or truncated entries
// are the tiers' concern (cache.Disk verifies checksums and serves bad
// files as misses), so everything reaching Get's hit path is intact bytes.
type Store struct {
	b Backing

	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	bytesLoaded atomic.Int64
	bytesStored atomic.Int64
}

// NewStore counts snapshot traffic over b.
func NewStore(b Backing) *Store { return &Store{b: b} }

// Get returns the snapshot stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	data, ok := s.b.Get(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.bytesLoaded.Add(int64(len(data)))
	return data, true
}

// Put stores a snapshot under key.
func (s *Store) Put(key string, data []byte) {
	s.puts.Add(1)
	s.bytesStored.Add(int64(len(data)))
	s.b.Put(key, data)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		BytesLoaded: s.bytesLoaded.Load(),
		BytesStored: s.bytesStored.Load(),
	}
}

// defaultTraceBytes bounds a TraceCache built with no explicit budget.
// Traces are per-(rotation, seed) and shared by the whole sweep, so a
// handful of rotations fit; gigantic budgets would just trade RSS for
// rebuilds the cursor spill already makes cheap.
const defaultTraceBytes = 256 << 20

// TraceStats snapshots a TraceCache's counters.
type TraceStats struct {
	Builds    int64 `json:"builds"` // trace sets decoded from scratch
	Reuses    int64 `json:"reuses"` // lookups served by an existing set
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// TraceCache builds each workload rotation's smt.TraceSet once and shares
// it across every configuration and goroutine of a sweep, bounded by a
// byte budget with least-recently-used eviction. Concurrent lookups of the
// same rotation block on one build instead of decoding in parallel.
type TraceCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	builds    int64
	reuses    int64
	evictions int64
}

// traceEntry is one cache slot. ts/err are published by once; done and
// bytes are guarded by the cache mutex so eviction never touches a set
// still being built.
type traceEntry struct {
	key  string
	once sync.Once
	ts   *smt.TraceSet
	err  error

	done  bool
	bytes int64
}

// NewTraceCache returns a cache bounded at maxBytes of trace records
// (<= 0 means the default budget).
func NewTraceCache(maxBytes int64) *TraceCache {
	if maxBytes <= 0 {
		maxBytes = defaultTraceBytes
	}
	return &TraceCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

func traceKey(spec smt.WorkloadSpec, perThread int64) string {
	return strings.Join(spec.Names, ",") + fmt.Sprintf("|s%d|n%d", spec.Seed, perThread)
}

// Get returns the trace set for spec, building it on first use. Identical
// concurrent lookups share one build.
func (c *TraceCache) Get(spec smt.WorkloadSpec, perThread int64) (*smt.TraceSet, error) {
	key := traceKey(spec, perThread)
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.ll.MoveToFront(el)
		c.reuses++
	} else {
		el = c.ll.PushFront(&traceEntry{key: key})
		c.items[key] = el
	}
	ent := el.Value.(*traceEntry)
	c.mu.Unlock()

	ent.once.Do(func() {
		ent.ts, ent.err = smt.BuildTraceSet(spec, perThread)
		c.mu.Lock()
		defer c.mu.Unlock()
		c.builds++
		ent.done = true
		if ent.err != nil {
			// A failed build holds no bytes and should not be pinned: drop
			// it so a later (corrected) spec is not served the stale error.
			c.removeLocked(ent)
			return
		}
		ent.bytes = ent.ts.Bytes()
		c.bytes += ent.bytes
		c.evictLocked(ent)
	})
	return ent.ts, ent.err
}

// evictLocked drops least-recently-used built entries until the budget
// holds, never touching keep (the entry just built) or unbuilt entries.
func (c *TraceCache) evictLocked(keep *traceEntry) {
	for el := c.ll.Back(); el != nil && c.bytes > c.maxBytes; {
		prev := el.Prev()
		ent := el.Value.(*traceEntry)
		if ent != keep && ent.done {
			c.removeLocked(ent)
			c.evictions++
		}
		el = prev
	}
}

// removeLocked detaches one entry from the index and byte accounting.
func (c *TraceCache) removeLocked(ent *traceEntry) {
	if el, ok := c.items[ent.key]; ok && el.Value.(*traceEntry) == ent {
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.bytes -= ent.bytes
	}
}

// Stats returns a snapshot of the cache's counters.
func (c *TraceCache) Stats() TraceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TraceStats{
		Builds:    c.builds,
		Reuses:    c.reuses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}
