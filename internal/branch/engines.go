package branch

import "fmt"

// dirEngine is the internal direction-prediction slot of a unit: the
// conditional taken/not-taken guess plus a confidence estimate, and the
// commit-time training step. Engines read the frame's per-thread history
// through u and keep their own counter tables.
type dirEngine interface {
	predict(u *unit, thread int, pc int64) (taken, confident bool)
	update(u *unit, thread int, pc int64, taken bool, history uint32)
}

// bump moves a 2-bit saturating counter toward the outcome.
func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// gshareDir is McFarling's gshare: one 2-bit counter table indexed by the
// XOR of the low PC bits and the thread's global history — the paper's
// baseline scheme. Confidence is counter saturation: a weakly-held
// counter (1 or 2) marks the prediction low-confidence.
type gshareDir struct {
	pht  []uint8
	mask uint64
}

func newGshareDir(cfg Config) dirEngine {
	e := &gshareDir{pht: make([]uint8, cfg.PHTEntries), mask: uint64(cfg.PHTEntries - 1)}
	for i := range e.pht {
		e.pht[i] = 1 // weakly not-taken
	}
	return e
}

func (e *gshareDir) index(pc int64, history uint32) int {
	return int(((uint64(pc) >> 2) ^ uint64(history)) & e.mask)
}

func (e *gshareDir) predict(u *unit, thread int, pc int64) (bool, bool) {
	c := e.pht[e.index(pc, u.history[thread])]
	return c >= 2, c == 0 || c == 3
}

func (e *gshareDir) update(u *unit, thread int, pc int64, taken bool, history uint32) {
	idx := e.index(pc, history)
	e.pht[idx] = bump(e.pht[idx], taken)
}

// smithsDir is Smith's bimodal predictor: the same 2-bit counters indexed
// by PC alone, no history. Confidence is counter saturation.
type smithsDir struct {
	pht  []uint8
	mask uint64
}

func newSmithsDir(cfg Config) dirEngine {
	e := &smithsDir{pht: make([]uint8, cfg.PHTEntries), mask: uint64(cfg.PHTEntries - 1)}
	for i := range e.pht {
		e.pht[i] = 1 // weakly not-taken
	}
	return e
}

func (e *smithsDir) predict(u *unit, thread int, pc int64) (bool, bool) {
	c := e.pht[(uint64(pc)>>2)&e.mask]
	return c >= 2, c == 0 || c == 3
}

func (e *smithsDir) update(u *unit, thread int, pc int64, taken bool, history uint32) {
	idx := (uint64(pc) >> 2) & e.mask
	e.pht[idx] = bump(e.pht[idx], taken)
}

// staticDir is backward-taken/forward-not-taken: a branch whose learned
// target lies at a lower PC (a loop back edge) predicts taken. The target
// comes from a non-mutating BTB peek, so an unseen branch — target unknown
// — predicts not-taken. Static prediction carries no confidence estimate.
type staticDir struct{}

func (staticDir) predict(u *unit, thread int, pc int64) (bool, bool) {
	if target, ok := u.peekTarget(thread, pc); ok {
		return target < pc, false
	}
	return false, false
}

func (staticDir) update(u *unit, thread int, pc int64, taken bool, history uint32) {}

// gskewedDir is the enhanced skewed predictor (Michaud, Seznec & Uhlig):
// three 2-bit banks addressed by distinct skewing functions of (PC,
// history) vote on the direction, so an alias in one bank is outvoted by
// the other two. Confidence is vote unanimity.
type gskewedDir struct {
	banks [3][]uint8
	mask  uint64
}

func newGskewedDir(cfg Config) dirEngine {
	e := &gskewedDir{mask: uint64(cfg.PHTEntries - 1)}
	for b := range e.banks {
		e.banks[b] = make([]uint8, cfg.PHTEntries)
		for i := range e.banks[b] {
			e.banks[b][i] = 1 // weakly not-taken
		}
	}
	return e
}

// indices computes the three skewed bank indices. The skewing functions
// only need to decorrelate the banks' aliasing patterns; simple shifted
// XOR mixes suffice and stay allocation-free.
func (e *gskewedDir) indices(pc int64, history uint32) (i0, i1, i2 int) {
	a := uint64(pc) >> 2
	h := uint64(history)
	i0 = int((a ^ h) & e.mask)
	i1 = int((a ^ (h << 1) ^ (a >> 3)) & e.mask)
	i2 = int(((a >> 1) ^ h ^ (a << 2)) & e.mask)
	return i0, i1, i2
}

func (e *gskewedDir) predict(u *unit, thread int, pc int64) (bool, bool) {
	i0, i1, i2 := e.indices(pc, u.history[thread])
	v0 := e.banks[0][i0] >= 2
	v1 := e.banks[1][i1] >= 2
	v2 := e.banks[2][i2] >= 2
	votes := 0
	if v0 {
		votes++
	}
	if v1 {
		votes++
	}
	if v2 {
		votes++
	}
	return votes >= 2, v0 == v1 && v1 == v2
}

func (e *gskewedDir) update(u *unit, thread int, pc int64, taken bool, history uint32) {
	i0, i1, i2 := e.indices(pc, history)
	e.banks[0][i0] = bump(e.banks[0][i0], taken)
	e.banks[1][i1] = bump(e.banks[1][i1], taken)
	e.banks[2][i2] = bump(e.banks[2][i2], taken)
}

// noneDir predicts every conditional branch not-taken, with no training
// and no confidence.
type noneDir struct{}

func (noneDir) predict(u *unit, thread int, pc int64) (bool, bool)               { return false, false }
func (noneDir) update(u *unit, thread int, pc int64, taken bool, history uint32) {}

// DirEngine is the public direction-engine slot for composed custom
// predictors: the conditional direction guess plus its confidence, and the
// commit-time training step. history is the thread's global history — the
// live register at predict time, the pre-branch checkpoint at update time,
// so training sees the same value the prediction saw. Implementations must
// be deterministic and allocation-free: they run on the simulator's
// zero-allocation cycle loop.
type DirEngine interface {
	Predict(history uint32, pc int64) (taken, confident bool)
	Update(history uint32, pc int64, taken bool)
}

// customDir adapts a public DirEngine into the internal slot.
type customDir struct {
	e DirEngine
}

func (c customDir) predict(u *unit, thread int, pc int64) (bool, bool) {
	return c.e.Predict(u.history[thread], pc)
}

func (c customDir) update(u *unit, thread int, pc int64, taken bool, history uint32) {
	c.e.Update(history, pc, taken)
}

// NewComposed builds a predictor from cfg's standard frame (thread-tagged
// BTB, per-thread history registers and return stacks, RAS with BTB
// fallback for returns — the built-ins' default variant) around a custom
// direction engine. Registering a Builder that calls NewComposed gives a
// custom engine the same treatment everywhere a built-in gets:
//
//	branch.Register("hybrid", func(cfg branch.Config) (branch.Predictor, error) {
//	    return branch.NewComposed(cfg, newHybridEngine(cfg))
//	})
func NewComposed(cfg Config, dir DirEngine) (Predictor, error) {
	if dir == nil {
		return nil, errNilEngine
	}
	return newUnit(cfg, customDir{e: dir}, retFull), nil
}

var errNilEngine = fmt.Errorf("branch: nil direction engine")

// builderFor wraps an engine constructor and return mode as a Builder.
func builderFor(mk func(cfg Config) dirEngine, ret retMode) Builder {
	return func(cfg Config) (Predictor, error) {
		return newUnit(cfg, mk(cfg), ret), nil
	}
}

func init() {
	engines := []struct {
		name string
		mk   func(cfg Config) dirEngine
	}{
		{Gshare, newGshareDir},
		{Smiths, newSmithsDir},
		{Static, func(Config) dirEngine { return staticDir{} }},
		{Gskewed, newGskewedDir},
		{None, func(Config) dirEngine { return noneDir{} }},
	}
	for _, e := range engines {
		e := e
		MustRegister(e.name, builderFor(e.mk, retFull))
		MustRegister(e.name+".rasonly", builderFor(e.mk, retRASOnly))
		MustRegister(e.name+".noret", builderFor(e.mk, retNone))
	}
	// The oracle: the core bypasses prediction entirely (Config.Oracle).
	// The frame built here exists only so the Predictor field is never nil;
	// under the oracle no wrong path ever starts and no method is called.
	MustRegister(Perfect, builderFor(newGshareDir, retFull))
}
