package branch

import "fmt"

// Direction-engine kinds a snapshot can carry. Custom (registry-supplied)
// engines are opaque — SaveState reports them unsupported and the caller
// falls back to a cold run.
const (
	dirKindGshare  = "gshare"
	dirKindSmiths  = "smiths"
	dirKindStatic  = "static"
	dirKindGskewed = "gskewed"
	dirKindNone    = "none"
)

// DirState serializes one direction engine's counter tables.
type DirState struct {
	Kind  string     `json:"kind"`
	PHT   []uint8    `json:"pht,omitempty"`   // gshare / smiths
	Banks [3][]uint8 `json:"banks,omitempty"` // gskewed
}

// RASState serializes one thread's return stack.
type RASState struct {
	Data []int64 `json:"data"`
	Top  int     `json:"top"`
	Size int     `json:"size"`
}

// UnitState is the complete serialized prediction frame: BTB contents in
// parallel arrays (index = set*assoc + way), per-thread history registers
// and return stacks, and the direction engine's tables. The return mode is
// not saved — it is fixed by the predictor's registered name, which the
// snapshot's configuration fingerprint already pins.
type UnitState struct {
	BTBTags    []uint64   `json:"btb_tags"`
	BTBTargets []int64    `json:"btb_targets"`
	BTBThreads []uint8    `json:"btb_threads"`
	BTBLRU     []uint32   `json:"btb_lru"`
	BTBValid   []bool     `json:"btb_valid"`
	History    []uint32   `json:"history"`
	RAS        []RASState `json:"ras"`
	LruTick    uint32     `json:"lru_tick"`
	Dir        DirState   `json:"dir"`
}

// SaveState captures a predictor's complete state. ok is false when the
// predictor is not a standard frame around a built-in direction engine
// (i.e. a fully custom Predictor implementation or a NewComposed custom
// engine) — callers treat that as "snapshot unsupported" and run cold.
func SaveState(p Predictor) (*UnitState, bool) {
	u, isUnit := p.(*unit)
	if !isUnit {
		return nil, false
	}
	dir, ok := saveDir(u.dir)
	if !ok {
		return nil, false
	}
	s := &UnitState{
		BTBTags:    make([]uint64, len(u.btb)),
		BTBTargets: make([]int64, len(u.btb)),
		BTBThreads: make([]uint8, len(u.btb)),
		BTBLRU:     make([]uint32, len(u.btb)),
		BTBValid:   make([]bool, len(u.btb)),
		History:    make([]uint32, len(u.history)),
		RAS:        make([]RASState, len(u.ras)),
		LruTick:    u.lruTick,
		Dir:        dir,
	}
	for i := range u.btb {
		e := &u.btb[i]
		s.BTBTags[i] = e.tag
		s.BTBTargets[i] = e.target
		s.BTBThreads[i] = e.thread
		s.BTBLRU[i] = e.lru
		s.BTBValid[i] = e.valid
	}
	copy(s.History, u.history)
	for t := range u.ras {
		st := &u.ras[t]
		rs := RASState{Data: make([]int64, len(st.data)), Top: st.top, Size: st.size}
		copy(rs.Data, st.data)
		s.RAS[t] = rs
	}
	return s, true
}

func saveDir(d dirEngine) (DirState, bool) {
	switch e := d.(type) {
	case *gshareDir:
		return DirState{Kind: dirKindGshare, PHT: append([]uint8(nil), e.pht...)}, true
	case *smithsDir:
		return DirState{Kind: dirKindSmiths, PHT: append([]uint8(nil), e.pht...)}, true
	case staticDir:
		return DirState{Kind: dirKindStatic}, true
	case *gskewedDir:
		var banks [3][]uint8
		for b := range e.banks {
			banks[b] = append([]uint8(nil), e.banks[b]...)
		}
		return DirState{Kind: dirKindGskewed, Banks: banks}, true
	case noneDir:
		return DirState{Kind: dirKindNone}, true
	default: // customDir and anything else: opaque
		return DirState{}, false
	}
}

// RestoreState installs a previously captured state onto a predictor built
// from the same configuration and registered name. Mismatched geometry or
// engine kind is rejected.
func RestoreState(p Predictor, s *UnitState) error {
	u, isUnit := p.(*unit)
	if !isUnit {
		return fmt.Errorf("branch: predictor does not support state restore")
	}
	if len(s.BTBTags) != len(u.btb) || len(s.BTBTargets) != len(u.btb) ||
		len(s.BTBThreads) != len(u.btb) || len(s.BTBLRU) != len(u.btb) || len(s.BTBValid) != len(u.btb) {
		return fmt.Errorf("branch: state BTB sized %d, unit has %d entries", len(s.BTBTags), len(u.btb))
	}
	if len(s.History) != len(u.history) || len(s.RAS) != len(u.ras) {
		return fmt.Errorf("branch: state threads %d/%d, unit has %d", len(s.History), len(s.RAS), len(u.history))
	}
	for t := range s.RAS {
		if len(s.RAS[t].Data) != len(u.ras[t].data) {
			return fmt.Errorf("branch: state RAS %d sized %d, unit has %d", t, len(s.RAS[t].Data), len(u.ras[t].data))
		}
		if s.RAS[t].Top < 0 || s.RAS[t].Top >= len(u.ras[t].data) ||
			s.RAS[t].Size < 0 || s.RAS[t].Size > len(u.ras[t].data) {
			return fmt.Errorf("branch: state RAS %d cursors out of range", t)
		}
	}
	if err := restoreDir(u.dir, s.Dir); err != nil {
		return err
	}
	for i := range u.btb {
		u.btb[i] = btbEntry{
			valid:  s.BTBValid[i],
			thread: s.BTBThreads[i],
			tag:    s.BTBTags[i],
			target: s.BTBTargets[i],
			lru:    s.BTBLRU[i],
		}
	}
	copy(u.history, s.History)
	for t := range u.ras {
		copy(u.ras[t].data, s.RAS[t].Data)
		u.ras[t].top = s.RAS[t].Top
		u.ras[t].size = s.RAS[t].Size
	}
	u.lruTick = s.LruTick
	return nil
}

func restoreDir(d dirEngine, s DirState) error {
	switch e := d.(type) {
	case *gshareDir:
		if s.Kind != dirKindGshare || len(s.PHT) != len(e.pht) {
			return fmt.Errorf("branch: state dir %q/%d does not match gshare/%d", s.Kind, len(s.PHT), len(e.pht))
		}
		copy(e.pht, s.PHT)
	case *smithsDir:
		if s.Kind != dirKindSmiths || len(s.PHT) != len(e.pht) {
			return fmt.Errorf("branch: state dir %q/%d does not match smiths/%d", s.Kind, len(s.PHT), len(e.pht))
		}
		copy(e.pht, s.PHT)
	case staticDir:
		if s.Kind != dirKindStatic {
			return fmt.Errorf("branch: state dir %q does not match static", s.Kind)
		}
	case *gskewedDir:
		if s.Kind != dirKindGskewed {
			return fmt.Errorf("branch: state dir %q does not match gskewed", s.Kind)
		}
		for b := range e.banks {
			if len(s.Banks[b]) != len(e.banks[b]) {
				return fmt.Errorf("branch: state gskewed bank %d sized %d, unit has %d", b, len(s.Banks[b]), len(e.banks[b]))
			}
		}
		for b := range e.banks {
			copy(e.banks[b], s.Banks[b])
		}
	case noneDir:
		if s.Kind != dirKindNone {
			return fmt.Errorf("branch: state dir %q does not match none", s.Kind)
		}
	default:
		return fmt.Errorf("branch: direction engine does not support state restore")
	}
	return nil
}
