package branch

import (
	"repro/internal/isa"
)

// retMode selects a predictor's return-prediction behaviour (the
// SCOoOTER none/RAS/BTB menu).
type retMode uint8

const (
	retFull    retMode = iota // pop the RAS, fall back to the BTB on empty
	retRASOnly                // pop the RAS only; empty predicts nothing
	retNone                   // no return prediction at all
)

// btbEntry is one BTB way: a (thread, tag) pair and the predicted target.
// The thread id in each entry is one of the paper's explicit SMT additions.
type btbEntry struct {
	valid  bool
	thread uint8
	tag    uint64
	target int64
	lru    uint32
}

// retStack is a fixed-size circular return stack. Overflow overwrites the
// oldest entry; underflow yields a garbage (zero) prediction, as in hardware.
type retStack struct {
	data []int64
	top  int // index of the next free slot
	size int // live entries, capped at len(data)
}

// unit is the standard prediction frame every built-in (and every
// NewComposed custom predictor) shares: the thread-tagged BTB, per-thread
// history registers and return stacks, with the conditional-direction
// policy delegated to a dirEngine and return prediction to a retMode.
type unit struct {
	cfg     Config
	sets    int
	setMask uint64
	btb     []btbEntry // sets * assoc, way-major within a set
	history []uint32   // per-thread global history register
	ras     []retStack // per-thread return stacks
	lruTick uint32
	dir     dirEngine
	ret     retMode
}

// newUnit builds the shared frame around a direction engine.
func newUnit(cfg Config, dir dirEngine, ret retMode) *unit {
	sets := cfg.BTBEntries / cfg.BTBAssoc
	u := &unit{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		btb:     make([]btbEntry, cfg.BTBEntries),
		history: make([]uint32, cfg.Threads),
		ras:     make([]retStack, cfg.Threads),
		dir:     dir,
		ret:     ret,
	}
	for t := range u.ras {
		u.ras[t] = retStack{data: make([]int64, cfg.RASEntries)}
	}
	return u
}

// Config returns the predictor's configuration.
func (u *unit) Config() Config { return u.cfg }

// Direction predicts taken/not-taken for a conditional branch at pc.
//
//smt:hotpath fetch-stage predict: called per control instruction per cycle
func (u *unit) Direction(thread int, pc int64) (taken, confident bool) {
	return u.dir.predict(u, thread, pc)
}

// Target looks up the BTB for (thread, pc); ok is false on a miss.
//
//smt:hotpath fetch-stage target lookup: called per control instruction per cycle
func (u *unit) Target(thread int, pc int64) (target int64, ok bool) {
	set, tag := u.btbSetTag(pc)
	base := set * u.cfg.BTBAssoc
	for w := 0; w < u.cfg.BTBAssoc; w++ {
		e := &u.btb[base+w]
		if e.valid && e.thread == uint8(thread) && e.tag == tag {
			u.lruTick++
			e.lru = u.lruTick
			return e.target, true
		}
	}
	return 0, false
}

// peekTarget is Target without the LRU touch: a probe for direction
// engines (static's backward/forward test) that must not perturb the BTB
// replacement state the real lookup will see.
func (u *unit) peekTarget(thread int, pc int64) (target int64, ok bool) {
	set, tag := u.btbSetTag(pc)
	base := set * u.cfg.BTBAssoc
	for w := 0; w < u.cfg.BTBAssoc; w++ {
		e := &u.btb[base+w]
		if e.valid && e.thread == uint8(thread) && e.tag == tag {
			return e.target, true
		}
	}
	return 0, false
}

func (u *unit) btbSetTag(pc int64) (set int, tag uint64) {
	line := uint64(pc) >> 2
	return int(line & u.setMask), line >> uint(log2(u.sets))
}

// SpeculateHistory shifts the predicted outcome of a conditional branch into
// the thread's global history register at fetch time, returning the previous
// value so the caller can checkpoint it for squash recovery.
//
//smt:hotpath fetch-stage history speculation: called per conditional branch
func (u *unit) SpeculateHistory(thread int, taken bool) (checkpoint uint32) {
	checkpoint = u.history[thread]
	h := checkpoint << 1
	if taken {
		h |= 1
	}
	if u.cfg.HistoryLen < 32 {
		h &= (1 << uint(u.cfg.HistoryLen)) - 1
	}
	u.history[thread] = h
	return checkpoint
}

// RestoreHistory rolls the thread's global history back to a checkpoint
// taken by SpeculateHistory (used when squashing wrong-path instructions).
func (u *unit) RestoreHistory(thread int, checkpoint uint32) {
	u.history[thread] = checkpoint
}

// History returns the thread's current global history register value.
func (u *unit) History(thread int) uint32 { return u.history[thread] }

// Update trains the predictor at branch commit: the direction engine moves
// toward the actual direction and, for taken control transfers, the BTB
// learns the target. history is the pre-branch history checkpoint, so
// training uses the same index the prediction used.
//
//smt:hotpath commit-stage training: called per committed control instruction
func (u *unit) Update(thread int, pc int64, class isa.Class, taken bool, target int64, history uint32) {
	if class.IsCondBranch() {
		u.dir.update(u, thread, pc, taken, history)
	}
	if taken && class.IsControl() {
		u.installBTB(thread, pc, target)
	}
}

// installBTB inserts or refreshes a BTB entry, evicting the LRU way.
func (u *unit) installBTB(thread int, pc, target int64) {
	set, tag := u.btbSetTag(pc)
	base := set * u.cfg.BTBAssoc
	victim := base
	u.lruTick++
	for w := 0; w < u.cfg.BTBAssoc; w++ {
		e := &u.btb[base+w]
		if e.valid && e.thread == uint8(thread) && e.tag == tag {
			e.target = target
			e.lru = u.lruTick
			return
		}
		if !e.valid {
			victim = base + w
		} else if u.btb[victim].valid && e.lru < u.btb[victim].lru {
			victim = base + w
		}
	}
	u.btb[victim] = btbEntry{valid: true, thread: uint8(thread), tag: tag, target: target, lru: u.lruTick}
}

// PushReturn records a call's return address on the thread's return stack
// (at fetch time). ok is false under retNone; otherwise the checkpoint
// undoes the push on a squash.
//
//smt:hotpath fetch-stage call handling: called per fetched call
func (u *unit) PushReturn(thread int, returnPC int64) (RASCheckpoint, bool) {
	if u.ret == retNone {
		return RASCheckpoint{}, false
	}
	s := &u.ras[thread]
	cp := RASCheckpoint{Top: s.top, Size: s.size, Saved: s.data[s.top]}
	s.data[s.top] = returnPC
	s.top = (s.top + 1) % len(s.data)
	if s.size < len(s.data) {
		s.size++
	}
	return cp, true
}

// Return predicts a return target: pop the return stack (hasCP reports a
// checkpointed pop), falling back to the BTB under retFull when the stack
// is empty. ok is false when no prediction is available (the core falls
// through until exec resolves the target).
//
//smt:hotpath fetch-stage return handling: called per fetched return
func (u *unit) Return(thread int, pc int64) (target int64, ok bool, cp RASCheckpoint, hasCP bool) {
	if u.ret != retNone {
		if t, popped, popCP := u.popReturn(thread); popped {
			return t, true, popCP, true
		}
	}
	if u.ret == retFull {
		if t, hit := u.Target(thread, pc); hit {
			return t, true, RASCheckpoint{}, false
		}
	}
	return 0, false, RASCheckpoint{}, false
}

// popReturn pops the thread's return stack; popped is false (and nothing
// changes) when the stack is empty.
func (u *unit) popReturn(thread int) (target int64, popped bool, cp RASCheckpoint) {
	s := &u.ras[thread]
	cp = RASCheckpoint{Top: s.top, Size: s.size}
	if s.size == 0 {
		return 0, false, cp
	}
	s.top = (s.top - 1 + len(s.data)) % len(s.data)
	cp.Saved = s.data[s.top]
	s.size--
	return s.data[s.top], true, cp
}

// RestoreRAS undoes a single push or pop using its checkpoint. Checkpoints
// must be restored in reverse order of creation (the squash walk is
// youngest-first, which satisfies this).
func (u *unit) RestoreRAS(thread int, cp RASCheckpoint) {
	s := &u.ras[thread]
	// Undo a push: the checkpointed top slot had Saved in it.
	// Undo a pop: the popped slot gets its value back. Both reduce to
	// restoring top/size and re-writing the saved slot value.
	if cp.Top != s.top || cp.Size != s.size {
		restoreSlot := cp.Top
		if cp.Size > s.size { // undoing a pop: slot below checkpointed top
			restoreSlot = (cp.Top - 1 + len(s.data)) % len(s.data)
		}
		s.data[restoreSlot] = cp.Saved
		s.top, s.size = cp.Top, cp.Size
	}
}

// RASDepth returns the number of live entries in the thread's return stack.
func (u *unit) RASDepth(thread int) int { return u.ras[thread].size }
