// Package branch implements the simulator's branch prediction subsystem as
// a name-keyed registry of predictors, mirroring the fetch/issue policy
// registry in internal/policy.
//
// Every predictor shares the paper's prediction frame (Section 2.1): a
// 256-entry four-way set-associative BTB whose entries are tagged with a
// thread id (to avoid predicting phantom branches for other threads),
// per-thread global history registers, and a 12-entry return stack per
// hardware context. The BTB and the direction tables are shared by all
// threads — the paper deliberately does not replicate or resize them for
// SMT — so a multiprogrammed workload degrades them realistically as
// threads are added.
//
// What varies by registered name is the conditional-direction engine and
// the return-prediction mode, following the SCOoOTER feature menu:
//
//   - "gshare" (the default): a 2K x 2-bit PHT indexed by the XOR of the
//     low PC bits and the per-thread history register (McFarling), exactly
//     the paper's baseline — the default configuration's behaviour and
//     fingerprint are byte-identical to the pre-registry implementation;
//   - "smiths": the same 2-bit counters indexed by PC alone (Smith 1981);
//   - "static": backward-taken/forward-not-taken, using a non-mutating BTB
//     peek for the target comparison (an unknown target predicts not-taken);
//   - "gskewed": three 2-bit banks with skewed indices and majority vote
//     (Michaud/Seznec/Uhlig);
//   - "none": always not-taken;
//   - "perfect": the oracle — the core bypasses prediction entirely.
//
// Each direction engine also registers ".rasonly" (return stack without
// BTB fallback) and ".noret" (no return prediction) variants. Custom
// predictors register via Register, either implementing Predictor outright
// or composing a DirEngine into the standard frame with NewComposed.
//
// Every predictor reports a per-prediction confidence estimate; the core's
// variable-fetch-rate mode (core.Config.VarFetchRate) throttles a thread's
// fetch allotment while low-confidence branches are in flight.
package branch

import (
	"fmt"

	"repro/internal/fingerprint"
)

// Built-in predictor names. Composable return-stack variants append
// ".rasonly" or ".noret" (e.g. "gshare.noret").
const (
	Gshare  = "gshare"
	Smiths  = "smiths"
	Static  = "static"
	Gskewed = "gskewed"
	None    = "none"
	Perfect = "perfect"

	// DefaultPredictor resolves the empty Config.Predictor name: the
	// paper's gshare scheme.
	DefaultPredictor = Gshare
)

// Config sizes the prediction hardware and names the predictor. The zero
// value is not useful; use DefaultConfig.
type Config struct {
	BTBEntries int  // total BTB entries (256 in the paper)
	BTBAssoc   int  // BTB associativity (4-way in the paper)
	PHTEntries int  // direction-table entries per bank (2048 in the paper)
	RASEntries int  // return-stack entries per thread (12 in the paper)
	HistoryLen int  // global history bits used in the gshare index
	Threads    int  // hardware contexts (sizes the per-thread state)
	Perfect    bool // oracle prediction: every branch and jump predicted correctly

	// Predictor names a registered predictor builder; empty selects the
	// default (gshare), keeping the configuration's fingerprint — and
	// every cached result keyed by it — identical to the pre-registry
	// encoding (see CanonicalFingerprint).
	Predictor string
}

// DefaultConfig returns the paper's baseline predictor configuration for the
// given number of hardware contexts.
func DefaultConfig(threads int) Config {
	return Config{
		BTBEntries: 256,
		BTBAssoc:   4,
		PHTEntries: 2048,
		RASEntries: 12,
		HistoryLen: 11, // log2(PHTEntries)
		Threads:    threads,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Threads < 1 {
		return fmt.Errorf("branch: Threads = %d, want >= 1", c.Threads)
	}
	if c.BTBEntries < c.BTBAssoc || c.BTBAssoc < 1 {
		return fmt.Errorf("branch: BTB %d entries / %d-way invalid", c.BTBEntries, c.BTBAssoc)
	}
	if c.BTBEntries%c.BTBAssoc != 0 {
		return fmt.Errorf("branch: BTB entries %d not divisible by assoc %d", c.BTBEntries, c.BTBAssoc)
	}
	if sets := c.BTBEntries / c.BTBAssoc; sets&(sets-1) != 0 {
		return fmt.Errorf("branch: BTB set count %d not a power of two", sets)
	}
	if c.PHTEntries < 2 || c.PHTEntries&(c.PHTEntries-1) != 0 {
		return fmt.Errorf("branch: PHT entries %d not a power of two", c.PHTEntries)
	}
	if c.RASEntries < 1 {
		return fmt.Errorf("branch: RAS entries %d, want >= 1", c.RASEntries)
	}
	if c.HistoryLen < 0 || c.HistoryLen > 32 {
		return fmt.Errorf("branch: history length %d out of range", c.HistoryLen)
	}
	if c.HistoryLen > log2(c.PHTEntries) {
		// More history bits than index bits silently alias the PHT index:
		// the XOR folds the excess bits onto the low ones, so two histories
		// the predictor means to distinguish hit the same counter.
		return fmt.Errorf("branch: history length %d exceeds log2(PHT entries) = %d",
			c.HistoryLen, log2(c.PHTEntries))
	}
	if _, ok := Lookup(c.Predictor); !ok {
		return fmt.Errorf("branch: unknown predictor %q (registered: %v)", c.Predictor, Names())
	}
	return nil
}

// resolved returns the effective predictor name (empty resolves to the
// default).
func (c Config) resolved() string {
	if c.Predictor == "" {
		return DefaultPredictor
	}
	return c.Predictor
}

// Oracle reports whether the configuration asks for perfect prediction, in
// which case the core bypasses the predictor entirely.
func (c Config) Oracle() bool {
	return c.Perfect || c.resolved() == Perfect
}

// CanonicalFingerprint keeps Config's canonical encoding stable as the
// subsystem grows: the Predictor field renders only when it names a
// non-default predictor, so every fingerprint computed before predictors
// became pluggable — and every cache key derived from one — remains valid,
// while any other predictor content-addresses the configuration it
// actually runs.
func (c Config) CanonicalFingerprint() string {
	if c.Predictor == DefaultPredictor {
		c.Predictor = "" // the default encodes as absent, like the empty name
	}
	return fingerprint.Struct(c, "Predictor")
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
