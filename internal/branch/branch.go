// Package branch implements the paper's branch prediction hardware: a
// decoupled branch target buffer (BTB) and pattern history table (PHT)
// scheme in the style of Calder & Grunwald, with per-thread subroutine
// return stacks.
//
// The baseline configuration matches Section 2.1 of the paper: a 256-entry
// four-way set-associative BTB whose entries are tagged with a thread id (to
// avoid predicting phantom branches for other threads), a 2K x 2-bit PHT
// indexed by the XOR of the low PC bits and the per-thread global history
// register (McFarling's gshare), and a 12-entry return stack per hardware
// context. The BTB and PHT are shared by all threads — the paper
// deliberately does not replicate or resize them for SMT — so a
// multiprogrammed workload degrades them realistically as threads are added.
package branch

import (
	"fmt"

	"repro/internal/isa"
)

// Config sizes the prediction hardware. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	BTBEntries int  // total BTB entries (256 in the paper)
	BTBAssoc   int  // BTB associativity (4-way in the paper)
	PHTEntries int  // pattern history table entries (2048 in the paper)
	RASEntries int  // return-stack entries per thread (12 in the paper)
	HistoryLen int  // global history bits used in the gshare index
	Threads    int  // hardware contexts (sizes the per-thread state)
	Perfect    bool // oracle prediction: every branch and jump predicted correctly
}

// DefaultConfig returns the paper's baseline predictor configuration for the
// given number of hardware contexts.
func DefaultConfig(threads int) Config {
	return Config{
		BTBEntries: 256,
		BTBAssoc:   4,
		PHTEntries: 2048,
		RASEntries: 12,
		HistoryLen: 11, // log2(PHTEntries)
		Threads:    threads,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Threads < 1 {
		return fmt.Errorf("branch: Threads = %d, want >= 1", c.Threads)
	}
	if c.BTBEntries < c.BTBAssoc || c.BTBAssoc < 1 {
		return fmt.Errorf("branch: BTB %d entries / %d-way invalid", c.BTBEntries, c.BTBAssoc)
	}
	if c.BTBEntries%c.BTBAssoc != 0 {
		return fmt.Errorf("branch: BTB entries %d not divisible by assoc %d", c.BTBEntries, c.BTBAssoc)
	}
	if sets := c.BTBEntries / c.BTBAssoc; sets&(sets-1) != 0 {
		return fmt.Errorf("branch: BTB set count %d not a power of two", sets)
	}
	if c.PHTEntries < 2 || c.PHTEntries&(c.PHTEntries-1) != 0 {
		return fmt.Errorf("branch: PHT entries %d not a power of two", c.PHTEntries)
	}
	if c.RASEntries < 1 {
		return fmt.Errorf("branch: RAS entries %d, want >= 1", c.RASEntries)
	}
	if c.HistoryLen < 0 || c.HistoryLen > 32 {
		return fmt.Errorf("branch: history length %d out of range", c.HistoryLen)
	}
	return nil
}

// btbEntry is one BTB way: a (thread, tag) pair and the predicted target.
// The thread id in each entry is one of the paper's explicit SMT additions.
type btbEntry struct {
	valid  bool
	thread uint8
	tag    uint64
	target int64
	lru    uint32
}

// Predictor is the complete branch prediction unit.
type Predictor struct {
	cfg     Config
	sets    int
	setMask uint64
	btb     []btbEntry // sets * assoc, way-major within a set
	pht     []uint8    // 2-bit saturating counters
	history []uint32   // per-thread global history register
	ras     []retStack // per-thread return stacks
	lruTick uint32
}

// retStack is a fixed-size circular return stack. Overflow overwrites the
// oldest entry; underflow yields a garbage (zero) prediction, as in hardware.
type retStack struct {
	data []int64
	top  int // index of the next free slot
	size int // live entries, capped at len(data)
}

// New builds a predictor from cfg.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.BTBEntries / cfg.BTBAssoc
	p := &Predictor{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		btb:     make([]btbEntry, cfg.BTBEntries),
		pht:     make([]uint8, cfg.PHTEntries),
		history: make([]uint32, cfg.Threads),
		ras:     make([]retStack, cfg.Threads),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	for t := range p.ras {
		p.ras[t] = retStack{data: make([]int64, cfg.RASEntries)}
	}
	return p, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// phtIndex computes the gshare index for (thread, pc).
func (p *Predictor) phtIndex(thread int, pc int64) int {
	idx := (uint64(pc) >> 2) ^ uint64(p.history[thread])
	return int(idx & uint64(p.cfg.PHTEntries-1))
}

// Direction predicts taken/not-taken for a conditional branch at pc.
func (p *Predictor) Direction(thread int, pc int64) bool {
	return p.pht[p.phtIndex(thread, pc)] >= 2
}

// Target looks up the BTB for (thread, pc); ok is false on a miss.
func (p *Predictor) Target(thread int, pc int64) (target int64, ok bool) {
	set, tag := p.btbSetTag(pc)
	base := set * p.cfg.BTBAssoc
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		e := &p.btb[base+w]
		if e.valid && e.thread == uint8(thread) && e.tag == tag {
			p.lruTick++
			e.lru = p.lruTick
			return e.target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbSetTag(pc int64) (set int, tag uint64) {
	line := uint64(pc) >> 2
	return int(line & p.setMask), line >> uint(log2(p.sets))
}

// SpeculateHistory shifts the predicted outcome of a conditional branch into
// the thread's global history register at fetch time, returning the previous
// value so the caller can checkpoint it for squash recovery.
func (p *Predictor) SpeculateHistory(thread int, taken bool) (checkpoint uint32) {
	checkpoint = p.history[thread]
	h := checkpoint << 1
	if taken {
		h |= 1
	}
	if p.cfg.HistoryLen < 32 {
		h &= (1 << uint(p.cfg.HistoryLen)) - 1
	}
	p.history[thread] = h
	return checkpoint
}

// RestoreHistory rolls the thread's global history back to a checkpoint
// taken by SpeculateHistory (used when squashing wrong-path instructions).
func (p *Predictor) RestoreHistory(thread int, checkpoint uint32) {
	p.history[thread] = checkpoint
}

// History returns the thread's current global history register value.
func (p *Predictor) History(thread int) uint32 { return p.history[thread] }

// Update trains the predictor at branch commit: the PHT counter moves toward
// the actual direction and, for taken control transfers, the BTB learns the
// target. history is the pre-branch history checkpoint, so training uses the
// same index the prediction used.
func (p *Predictor) Update(thread int, pc int64, class isa.Class, taken bool, target int64, history uint32) {
	if class.IsCondBranch() {
		saved := p.history[thread]
		p.history[thread] = history
		idx := p.phtIndex(thread, pc)
		p.history[thread] = saved
		if taken {
			if p.pht[idx] < 3 {
				p.pht[idx]++
			}
		} else if p.pht[idx] > 0 {
			p.pht[idx]--
		}
	}
	if taken && class.IsControl() {
		p.installBTB(thread, pc, target)
	}
}

// installBTB inserts or refreshes a BTB entry, evicting the LRU way.
func (p *Predictor) installBTB(thread int, pc, target int64) {
	set, tag := p.btbSetTag(pc)
	base := set * p.cfg.BTBAssoc
	victim := base
	p.lruTick++
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		e := &p.btb[base+w]
		if e.valid && e.thread == uint8(thread) && e.tag == tag {
			e.target = target
			e.lru = p.lruTick
			return
		}
		if !e.valid {
			victim = base + w
		} else if p.btb[victim].valid && e.lru < p.btb[victim].lru {
			victim = base + w
		}
	}
	p.btb[victim] = btbEntry{valid: true, thread: uint8(thread), tag: tag, target: target, lru: p.lruTick}
}

// PushReturn records a call's return address on the thread's return stack
// (at fetch time). It returns a checkpoint for squash recovery.
func (p *Predictor) PushReturn(thread int, returnPC int64) RASCheckpoint {
	s := &p.ras[thread]
	cp := RASCheckpoint{Top: s.top, Size: s.size, Saved: s.data[s.top]}
	s.data[s.top] = returnPC
	s.top = (s.top + 1) % len(s.data)
	if s.size < len(s.data) {
		s.size++
	}
	return cp
}

// PopReturn predicts a return target by popping the thread's return stack.
// ok is false if the stack is empty. The checkpoint restores the stack on a
// squash.
func (p *Predictor) PopReturn(thread int) (target int64, ok bool, cp RASCheckpoint) {
	s := &p.ras[thread]
	cp = RASCheckpoint{Top: s.top, Size: s.size}
	if s.size == 0 {
		return 0, false, cp
	}
	s.top = (s.top - 1 + len(s.data)) % len(s.data)
	cp.Saved = s.data[s.top]
	s.size--
	return s.data[s.top], true, cp
}

// RASCheckpoint captures enough return-stack state to undo one push or pop.
type RASCheckpoint struct {
	Top   int
	Size  int
	Saved int64
}

// RestoreRAS undoes a single push or pop using its checkpoint. Checkpoints
// must be restored in reverse order of creation (the squash walk is
// youngest-first, which satisfies this).
func (p *Predictor) RestoreRAS(thread int, cp RASCheckpoint) {
	s := &p.ras[thread]
	// Undo a push: the checkpointed top slot had Saved in it.
	// Undo a pop: the popped slot gets its value back. Both reduce to
	// restoring top/size and re-writing the saved slot value.
	if cp.Top != s.top || cp.Size != s.size {
		restoreSlot := cp.Top
		if cp.Size > s.size { // undoing a pop: slot below checkpointed top
			restoreSlot = (cp.Top - 1 + len(s.data)) % len(s.data)
		}
		s.data[restoreSlot] = cp.Saved
		s.top, s.size = cp.Top, cp.Size
	}
}

// RASDepth returns the number of live entries in the thread's return stack.
func (p *Predictor) RASDepth(thread int) int { return p.ras[thread].size }

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
