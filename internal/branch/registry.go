package branch

import (
	"fmt"
	"sync"

	"repro/internal/isa"
)

// Predictor is the branch prediction extension point: everything the fetch
// stage consults per control instruction, plus the squash-restore protocol
// the core drives on mispredicts.
//
// Contract: every method must be deterministic and allocation-free — the
// fetch stage calls Direction/Target/Return every cycle on the simulator's
// zero-allocation hot path, and the byte-identical-results guarantee flows
// through each implementation. thread is always in [0, Config().Threads).
type Predictor interface {
	// Direction predicts taken/not-taken for a conditional branch at pc,
	// along with a confidence estimate. A low-confidence prediction feeds
	// the variable-fetch-rate throttle; predictors without a meaningful
	// estimator report confident=false.
	Direction(thread int, pc int64) (taken, confident bool)

	// Target looks up the BTB for (thread, pc); ok is false on a miss.
	Target(thread int, pc int64) (target int64, ok bool)

	// SpeculateHistory shifts the predicted outcome of a conditional branch
	// into the thread's global history register at fetch time, returning
	// the previous value so the caller can checkpoint it for squash
	// recovery.
	SpeculateHistory(thread int, taken bool) (checkpoint uint32)

	// RestoreHistory rolls the thread's global history back to a checkpoint
	// taken by SpeculateHistory (used when squashing wrong-path
	// instructions).
	RestoreHistory(thread int, checkpoint uint32)

	// History returns the thread's current global history register value.
	History(thread int) uint32

	// PushReturn records a call's return address (at fetch time). ok is
	// false when the predictor does not maintain a return stack; otherwise
	// cp is the checkpoint for squash recovery.
	PushReturn(thread int, returnPC int64) (cp RASCheckpoint, ok bool)

	// Return predicts the target of a return instruction at pc. hasCP is
	// true when the prediction popped the return stack, in which case cp
	// restores it on a squash (a BTB-fallback prediction mutates no
	// checkpointed state).
	Return(thread int, pc int64) (target int64, ok bool, cp RASCheckpoint, hasCP bool)

	// RestoreRAS undoes a single push or pop using its checkpoint.
	// Checkpoints must be restored in reverse order of creation (the
	// squash walk is youngest-first, which satisfies this).
	RestoreRAS(thread int, cp RASCheckpoint)

	// RASDepth returns the live entries in the thread's return stack.
	RASDepth(thread int) int

	// Update trains the predictor at branch commit: the direction engine
	// moves toward the actual outcome and, for taken control transfers,
	// the BTB learns the target. history is the pre-branch history
	// checkpoint, so training uses the same index the prediction used.
	Update(thread int, pc int64, class isa.Class, taken bool, target int64, history uint32)

	// Config returns the predictor's configuration.
	Config() Config
}

// RASCheckpoint captures enough return-stack state to undo one push or pop.
type RASCheckpoint struct {
	Top   int
	Size  int
	Saved int64
}

// Builder constructs a predictor for a validated configuration. Builders
// run once per simulated machine, at construction — never on the cycle
// path.
type Builder func(cfg Config) (Predictor, error)

// The registry maps predictor names to builders. Registration order is
// preserved for listings (built-ins first, then caller registrations);
// lookups are concurrency-safe so services can register predictors while
// simulations resolve others.
var (
	regMu    sync.RWMutex
	reg      = map[string]Builder{}
	regOrder []string
)

// validateName enforces the predictor-name grammar: a letter followed by
// letters, digits, or _ + . - (the built-in names plus variant
// punctuation), at most 64 bytes. Names are case-sensitive; the convention
// is lowercase, matching the SCOoOTER menu.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("branch: empty predictor name")
	}
	if len(name) > 64 {
		return fmt.Errorf("branch: name %q exceeds 64 bytes", name)
	}
	for i, r := range name {
		letter := r >= 'A' && r <= 'Z' || r >= 'a' && r <= 'z'
		if i == 0 && !letter {
			return fmt.Errorf("branch: name %q must start with a letter", name)
		}
		if !letter && !(r >= '0' && r <= '9') && r != '_' && r != '+' && r != '.' && r != '-' {
			return fmt.Errorf("branch: name %q contains invalid character %q", name, r)
		}
	}
	return nil
}

// Register adds a predictor builder under name. Names are permanent within
// a process: re-registering one fails, so a cached result keyed by a name
// can never silently mean two different machines.
func Register(name string, b Builder) error {
	if b == nil {
		return fmt.Errorf("branch: nil predictor builder")
	}
	if err := validateName(name); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		return fmt.Errorf("branch: predictor %q already registered", name)
	}
	reg[name] = b
	regOrder = append(regOrder, name)
	return nil
}

// MustRegister is Register for init-time registrations.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Lookup returns the builder registered under name. The empty name
// resolves to the default predictor, matching Config's zero value.
func Lookup(name string) (Builder, bool) {
	if name == "" {
		name = DefaultPredictor
	}
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := reg[name]
	return b, ok
}

// Names returns every registered predictor name in registration order
// (built-ins first).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// New builds the predictor cfg names (the default when unnamed).
func New(cfg Config) (Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b, ok := Lookup(cfg.Predictor)
	if !ok {
		return nil, fmt.Errorf("branch: unknown predictor %q (registered: %v)", cfg.Predictor, Names())
	}
	return b(cfg)
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}
