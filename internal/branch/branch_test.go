package branch

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func newTest(t *testing.T, threads int) *Predictor {
	t.Helper()
	p, err := New(DefaultConfig(threads))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(8)
	if c.BTBEntries != 256 || c.BTBAssoc != 4 || c.PHTEntries != 2048 || c.RASEntries != 12 {
		t.Fatalf("default config %+v does not match Section 2.1", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BTBEntries: 256, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 12, Threads: 0},
		{BTBEntries: 0, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 12, Threads: 1},
		{BTBEntries: 255, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 12, Threads: 1},
		{BTBEntries: 192, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 12, Threads: 1}, // 48 sets
		{BTBEntries: 256, BTBAssoc: 4, PHTEntries: 1000, RASEntries: 12, Threads: 1},
		{BTBEntries: 256, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 0, Threads: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
}

// TestPHTTrains: a branch always taken at one PC should saturate toward
// taken after a few updates.
func TestPHTTrains(t *testing.T) {
	p := newTest(t, 1)
	pc := int64(0x1000)
	if p.Direction(0, pc) {
		t.Fatal("PHT should initialize weakly not-taken")
	}
	for i := 0; i < 4; i++ {
		h := p.History(0)
		p.Update(0, pc, isa.ClassBranch, true, 0x2000, h)
	}
	if !p.Direction(0, pc) {
		t.Fatal("PHT failed to learn an always-taken branch")
	}
	for i := 0; i < 8; i++ {
		h := p.History(0)
		p.Update(0, pc, isa.ClassBranch, false, 0x2000, h)
	}
	if p.Direction(0, pc) {
		t.Fatal("PHT failed to unlearn")
	}
}

// TestGshareUsesHistory: with different global histories the same PC should
// map to different PHT entries (that is the point of gshare).
func TestGshareUsesHistory(t *testing.T) {
	p := newTest(t, 1)
	pc := int64(0x4000)
	i1 := p.phtIndex(0, pc)
	p.SpeculateHistory(0, true)
	i2 := p.phtIndex(0, pc)
	if i1 == i2 {
		t.Fatal("history did not affect PHT index")
	}
}

func TestHistoryCheckpointRestore(t *testing.T) {
	p := newTest(t, 2)
	cp1 := p.SpeculateHistory(1, true)
	cp2 := p.SpeculateHistory(1, false)
	p.SpeculateHistory(1, true)
	p.RestoreHistory(1, cp2)
	if got := p.History(1); got != cp2 {
		t.Fatalf("restore to cp2: history %b want %b", got, cp2)
	}
	p.RestoreHistory(1, cp1)
	if got := p.History(1); got != 0 {
		t.Fatalf("restore to cp1: history %b want 0", got)
	}
	// Thread 0's history must be untouched.
	if p.History(0) != 0 {
		t.Fatal("cross-thread history contamination")
	}
}

func TestBTBHitAfterInstall(t *testing.T) {
	p := newTest(t, 4)
	p.Update(2, 0x1000, isa.ClassJump, true, 0xBEEF0, p.History(2))
	if tgt, ok := p.Target(2, 0x1000); !ok || tgt != 0xBEEF0 {
		t.Fatalf("BTB lookup = %#x, %v", tgt, ok)
	}
	if _, ok := p.Target(2, 0x1040); ok {
		t.Fatal("BTB hit for never-installed PC")
	}
}

// TestBTBThreadTagging: entries installed by one thread must not be
// returned for another (phantom-branch avoidance, Section 2).
func TestBTBThreadTagging(t *testing.T) {
	p := newTest(t, 8)
	p.Update(3, 0x1000, isa.ClassJump, true, 0xAAAA0, p.History(3))
	if _, ok := p.Target(4, 0x1000); ok {
		t.Fatal("thread 4 hit thread 3's BTB entry")
	}
	if tgt, ok := p.Target(3, 0x1000); !ok || tgt != 0xAAAA0 {
		t.Fatal("thread 3 lost its own entry")
	}
}

// TestBTBLRUEviction: filling a set beyond its associativity evicts the
// least recently used entry, not the most recent.
func TestBTBLRUEviction(t *testing.T) {
	cfg := DefaultConfig(1)
	p := MustNew(cfg)
	sets := cfg.BTBEntries / cfg.BTBAssoc
	// PCs mapping to the same set: stride = sets * 4 bytes.
	pcAt := func(i int) int64 { return int64(0x8000 + i*sets*4) }
	for i := 0; i < cfg.BTBAssoc; i++ {
		p.Update(0, pcAt(i), isa.ClassJump, true, int64(0x100+i), 0)
	}
	// Touch entry 0 so entry 1 becomes LRU.
	if _, ok := p.Target(0, pcAt(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	p.Update(0, pcAt(cfg.BTBAssoc), isa.ClassJump, true, 0x999, 0)
	if _, ok := p.Target(0, pcAt(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := p.Target(0, pcAt(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestBTBUpdateRefreshesExisting(t *testing.T) {
	p := newTest(t, 1)
	p.Update(0, 0x2000, isa.ClassJumpInd, true, 0x3000, 0)
	p.Update(0, 0x2000, isa.ClassJumpInd, true, 0x4000, 0)
	if tgt, _ := p.Target(0, 0x2000); tgt != 0x4000 {
		t.Fatalf("BTB target not refreshed: %#x", tgt)
	}
}

func TestRASPushPop(t *testing.T) {
	p := newTest(t, 2)
	p.PushReturn(0, 0x100)
	p.PushReturn(0, 0x200)
	if tgt, ok, _ := p.PopReturn(0); !ok || tgt != 0x200 {
		t.Fatalf("pop = %#x, %v", tgt, ok)
	}
	if tgt, ok, _ := p.PopReturn(0); !ok || tgt != 0x100 {
		t.Fatalf("pop = %#x, %v", tgt, ok)
	}
	if _, ok, _ := p.PopReturn(0); ok {
		t.Fatal("pop from empty stack succeeded")
	}
}

func TestRASPerThread(t *testing.T) {
	p := newTest(t, 2)
	p.PushReturn(0, 0xAAA8)
	p.PushReturn(1, 0xBBB8)
	if tgt, ok, _ := p.PopReturn(0); !ok || tgt != 0xAAA8 {
		t.Fatalf("thread 0 pop = %#x, %v", tgt, ok)
	}
	if tgt, ok, _ := p.PopReturn(1); !ok || tgt != 0xBBB8 {
		t.Fatalf("thread 1 pop = %#x, %v", tgt, ok)
	}
}

// TestRASOverflowWrap: pushing beyond capacity keeps the most recent
// RASEntries returns (a 12-deep circular stack, per the paper).
func TestRASOverflowWrap(t *testing.T) {
	cfg := DefaultConfig(1)
	p := MustNew(cfg)
	n := cfg.RASEntries + 3
	for i := 0; i < n; i++ {
		p.PushReturn(0, int64(i*8))
	}
	if p.RASDepth(0) != cfg.RASEntries {
		t.Fatalf("depth = %d, want %d", p.RASDepth(0), cfg.RASEntries)
	}
	for i := n - 1; i >= n-cfg.RASEntries; i-- {
		tgt, ok, _ := p.PopReturn(0)
		if !ok || tgt != int64(i*8) {
			t.Fatalf("pop %d = %#x, %v; want %#x", i, tgt, ok, i*8)
		}
	}
}

// TestRASCheckpointUndo: undoing a push and a pop in reverse order restores
// the stack exactly.
func TestRASCheckpointUndo(t *testing.T) {
	p := newTest(t, 1)
	p.PushReturn(0, 0x10)
	p.PushReturn(0, 0x20)
	// Speculative pop then push (wrong-path call after wrong-path return).
	tgt, ok, cpPop := p.PopReturn(0)
	if !ok || tgt != 0x20 {
		t.Fatal("setup pop failed")
	}
	cpPush := p.PushReturn(0, 0x99)
	// Restore in reverse order.
	p.RestoreRAS(0, cpPush)
	p.RestoreRAS(0, cpPop)
	if tgt, ok, _ := p.PopReturn(0); !ok || tgt != 0x20 {
		t.Fatalf("after undo, pop = %#x, %v; want 0x20", tgt, ok)
	}
	if tgt, ok, _ := p.PopReturn(0); !ok || tgt != 0x10 {
		t.Fatalf("after undo, second pop = %#x, %v; want 0x10", tgt, ok)
	}
}

// Property: a push followed immediately by its restore leaves depth and
// subsequent pops unchanged, from any reachable stack state.
func TestRASPushUndoProperty(t *testing.T) {
	f := func(ops []bool, addr int64) bool {
		p := MustNew(DefaultConfig(1))
		for i, push := range ops {
			if push {
				p.PushReturn(0, int64(i+1)*8)
			} else {
				p.PopReturn(0)
			}
		}
		before := p.RASDepth(0)
		cp := p.PushReturn(0, addr)
		p.RestoreRAS(0, cp)
		return p.RASDepth(0) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictabilityOfPatterns: gshare with 11 bits of history must learn a
// short repeating pattern at a single PC essentially perfectly.
func TestPredictabilityOfPatterns(t *testing.T) {
	p := newTest(t, 1)
	pc := int64(0x7700)
	pattern := []bool{true, true, false}
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		actual := pattern[i%len(pattern)]
		pred := p.Direction(0, pc)
		h := p.SpeculateHistory(0, actual) // history tracks actual outcome
		p.Update(0, pc, isa.ClassBranch, actual, 0, h)
		if i > 300 {
			total++
			if pred == actual {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("gshare accuracy on period-3 pattern = %.3f, want > 0.95", acc)
	}
}

// TestSharedPHTInterference: two threads whose branches alias to the same
// PHT counters and train opposite directions must degrade each other — the
// mechanism behind the paper's Table 3 mispredict growth with thread count.
// History is disabled so the aliasing is exact and the effect deterministic.
func TestSharedPHTInterference(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.HistoryLen = 0
	acc := func(p *Predictor, interfere bool) float64 {
		correct, total := 0, 0
		for i := 0; i < 4000; i++ {
			pc := int64(0x100 + (i%64)*4)
			pred := p.Direction(0, pc)
			p.Update(0, pc, isa.ClassBranch, true, 0, 0)
			if pred {
				correct++
			}
			total++
			if interfere {
				// Thread 1: opposite direction at PCs aliasing to the same
				// PHT counters (index uses pc>>2 mod 2048).
				pc1 := pc + 2048*4
				p.Update(1, pc1, isa.ClassBranch, false, 0, 0)
				p.Update(1, pc1, isa.ClassBranch, false, 0, 0)
			}
		}
		return float64(correct) / float64(total)
	}
	soloAcc := acc(MustNew(cfg), false)
	sharedAcc := acc(MustNew(cfg), true)
	if soloAcc < 0.9 {
		t.Fatalf("solo accuracy %.3f unexpectedly low", soloAcc)
	}
	if sharedAcc >= soloAcc-0.05 {
		t.Fatalf("no interference: solo %.3f, shared %.3f", soloAcc, sharedAcc)
	}
}
