package branch

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fingerprint"
	"repro/internal/isa"
)

func newTest(t *testing.T, threads int) *unit {
	t.Helper()
	p, err := New(DefaultConfig(threads))
	if err != nil {
		t.Fatal(err)
	}
	return p.(*unit)
}

// mustUnit builds a named predictor and unwraps the shared frame.
func mustUnit(t *testing.T, cfg Config) *unit {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p.(*unit)
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(8)
	if c.BTBEntries != 256 || c.BTBAssoc != 4 || c.PHTEntries != 2048 || c.RASEntries != 12 {
		t.Fatalf("default config %+v does not match Section 2.1", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BTBEntries: 256, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 12, Threads: 0},
		{BTBEntries: 0, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 12, Threads: 1},
		{BTBEntries: 255, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 12, Threads: 1},
		{BTBEntries: 192, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 12, Threads: 1}, // 48 sets
		{BTBEntries: 256, BTBAssoc: 4, PHTEntries: 1000, RASEntries: 12, Threads: 1},
		{BTBEntries: 256, BTBAssoc: 4, PHTEntries: 2048, RASEntries: 0, Threads: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
}

// TestValidateRejectsOversizedHistory: more history bits than PHT index
// bits silently alias the gshare index, so Validate must reject the
// combination instead of letting the extra bits fold away.
func TestValidateRejectsOversizedHistory(t *testing.T) {
	c := DefaultConfig(1)
	c.PHTEntries = 1024 // log2 = 10
	c.HistoryLen = 11
	if err := c.Validate(); err == nil {
		t.Fatal("HistoryLen 11 with 1024 PHT entries must not validate")
	}
	c.HistoryLen = 10
	if err := c.Validate(); err != nil {
		t.Fatalf("HistoryLen == log2(PHTEntries) must validate: %v", err)
	}
}

func TestValidateRejectsUnknownPredictor(t *testing.T) {
	c := DefaultConfig(1)
	c.Predictor = "no-such-predictor"
	err := c.Validate()
	if err == nil {
		t.Fatal("unknown predictor name must not validate")
	}
	if !strings.Contains(err.Error(), Gshare) || !strings.Contains(err.Error(), Gskewed) {
		t.Fatalf("error %q should list the registered names", err)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{
		Gshare, Smiths, Static, Gskewed, None, Perfect,
		"gshare.rasonly", "gshare.noret", "none.noret",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("built-in %q not registered", name)
		}
	}
	// The empty name resolves to the default.
	if _, ok := Lookup(""); !ok {
		t.Fatal("empty name did not resolve to the default predictor")
	}
	// Names are permanent: re-registering a built-in fails.
	if err := Register(Gshare, func(cfg Config) (Predictor, error) { return nil, nil }); err == nil {
		t.Fatal("re-registering gshare succeeded")
	}
	// Name grammar.
	if err := Register("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	if err := Register("9lives", func(cfg Config) (Predictor, error) { return nil, nil }); err == nil {
		t.Fatal("name starting with a digit accepted")
	}
	names := Names()
	if len(names) == 0 || names[0] != Gshare {
		t.Fatalf("Names() = %v, want gshare first (registration order)", names)
	}
}

// TestCanonicalEncodingFrozen pins the default configuration's canonical
// encoding to the exact pre-registry rendering: the Predictor field must be
// invisible for the default (whether spelled "" or "gshare"), so every
// fingerprint and cache key computed before predictors became pluggable
// remains valid.
func TestCanonicalEncodingFrozen(t *testing.T) {
	const want = "{BTBAssoc:4;BTBEntries:256;HistoryLen:11;PHTEntries:2048;Perfect:false;RASEntries:12;Threads:8}"
	if got := fingerprint.Canonical(DefaultConfig(8)); got != want {
		t.Fatalf("default canonical encoding drifted:\ngot  %s\nwant %s", got, want)
	}
	named := DefaultConfig(8)
	named.Predictor = Gshare
	if got := fingerprint.Canonical(named); got != want {
		t.Fatalf("explicit gshare must encode identically to the default:\ngot  %s\nwant %s", got, want)
	}
	custom := DefaultConfig(8)
	custom.Predictor = Gskewed
	if got := fingerprint.Canonical(custom); got == want || !strings.Contains(got, `Predictor:"gskewed"`) {
		t.Fatalf("non-default predictor must content-address: %s", got)
	}
}

// TestPHTTrains: a branch always taken at one PC should saturate toward
// taken after a few updates.
func TestPHTTrains(t *testing.T) {
	p := newTest(t, 1)
	pc := int64(0x1000)
	if taken, _ := p.Direction(0, pc); taken {
		t.Fatal("PHT should initialize weakly not-taken")
	}
	for i := 0; i < 4; i++ {
		h := p.History(0)
		p.Update(0, pc, isa.ClassBranch, true, 0x2000, h)
	}
	if taken, _ := p.Direction(0, pc); !taken {
		t.Fatal("PHT failed to learn an always-taken branch")
	}
	for i := 0; i < 8; i++ {
		h := p.History(0)
		p.Update(0, pc, isa.ClassBranch, false, 0x2000, h)
	}
	if taken, _ := p.Direction(0, pc); taken {
		t.Fatal("PHT failed to unlearn")
	}
}

// TestConfidenceTracksSaturation: a fresh (weakly-held) counter is
// low-confidence; a saturated one is confident.
func TestConfidenceTracksSaturation(t *testing.T) {
	p := newTest(t, 1)
	pc := int64(0x1000)
	if _, conf := p.Direction(0, pc); conf {
		t.Fatal("weakly not-taken counter reported confident")
	}
	for i := 0; i < 4; i++ {
		p.Update(0, pc, isa.ClassBranch, true, 0x2000, p.History(0))
	}
	if taken, conf := p.Direction(0, pc); !taken || !conf {
		t.Fatalf("saturated counter: taken=%v conf=%v, want true/true", taken, conf)
	}
}

// TestGshareUsesHistory: with different global histories the same PC should
// map to different PHT entries (that is the point of gshare).
func TestGshareUsesHistory(t *testing.T) {
	p := newTest(t, 1)
	g := p.dir.(*gshareDir)
	pc := int64(0x4000)
	i1 := g.index(pc, p.history[0])
	p.SpeculateHistory(0, true)
	i2 := g.index(pc, p.history[0])
	if i1 == i2 {
		t.Fatal("history did not affect PHT index")
	}
}

// TestSmithsIgnoresHistory: the bimodal predictor must return the same
// counter regardless of global history.
func TestSmithsIgnoresHistory(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Predictor = Smiths
	p := mustUnit(t, cfg)
	pc := int64(0x4000)
	for i := 0; i < 4; i++ {
		p.Update(0, pc, isa.ClassBranch, true, 0x100, p.History(0))
	}
	p.SpeculateHistory(0, true)
	p.SpeculateHistory(0, false)
	if taken, _ := p.Direction(0, pc); !taken {
		t.Fatal("smiths prediction changed with history")
	}
}

// TestStaticBackwardTaken: once the BTB has learned a target, static
// predicts taken exactly for backward (loop) branches, and the probe must
// not disturb BTB replacement state.
func TestStaticBackwardTaken(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Predictor = Static
	p := mustUnit(t, cfg)
	back, fwd := int64(0x5000), int64(0x6000)
	if taken, conf := p.Direction(0, back); taken || conf {
		t.Fatal("unknown-target branch must predict not-taken, low confidence")
	}
	p.Update(0, back, isa.ClassBranch, true, 0x4000, 0) // backward target
	p.Update(0, fwd, isa.ClassBranch, true, 0x7000, 0)  // forward target
	if taken, _ := p.Direction(0, back); !taken {
		t.Fatal("backward branch not predicted taken")
	}
	if taken, _ := p.Direction(0, fwd); taken {
		t.Fatal("forward branch predicted taken")
	}
	tick := p.lruTick
	p.Direction(0, back)
	if p.lruTick != tick {
		t.Fatal("static direction probe perturbed BTB LRU state")
	}
}

// TestGskewedMajorityTrains: the three-bank majority vote must learn a
// biased branch like the other engines, and report unanimity as confidence.
func TestGskewedMajorityTrains(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Predictor = Gskewed
	p := mustUnit(t, cfg)
	pc := int64(0x2340)
	if taken, conf := p.Direction(0, pc); taken || !conf {
		t.Fatalf("fresh gskewed: taken=%v conf=%v, want false (unanimous not-taken)", taken, conf)
	}
	for i := 0; i < 4; i++ {
		p.Update(0, pc, isa.ClassBranch, true, 0x100, p.History(0))
	}
	if taken, conf := p.Direction(0, pc); !taken || !conf {
		t.Fatalf("trained gskewed: taken=%v conf=%v, want true/true", taken, conf)
	}
}

// TestNonePredictsNotTaken: the none engine never predicts taken and never
// claims confidence.
func TestNonePredictsNotTaken(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Predictor = None
	p := mustUnit(t, cfg)
	pc := int64(0x100)
	for i := 0; i < 8; i++ {
		p.Update(0, pc, isa.ClassBranch, true, 0x2000, p.History(0))
	}
	if taken, conf := p.Direction(0, pc); taken || conf {
		t.Fatalf("none engine: taken=%v conf=%v, want false/false", taken, conf)
	}
}

// TestReturnVariants: the three return modes differ exactly in RAS use and
// BTB fallback.
func TestReturnVariants(t *testing.T) {
	retPC := int64(0x9000)
	mk := func(name string) *unit {
		cfg := DefaultConfig(1)
		cfg.Predictor = name
		return mustUnit(t, cfg)
	}

	full := mk("gshare")
	if _, ok := full.PushReturn(0, retPC); !ok {
		t.Fatal("full: push rejected")
	}
	if tgt, ok, _, hasCP := full.Return(0, 0x100); !ok || tgt != retPC || !hasCP {
		t.Fatalf("full: Return = %#x, %v, hasCP=%v", tgt, ok, hasCP)
	}
	// Empty RAS, BTB knows the return site: fallback, no checkpoint.
	full.Update(0, 0x100, isa.ClassReturn, true, retPC, 0)
	if tgt, ok, _, hasCP := full.Return(0, 0x100); !ok || tgt != retPC || hasCP {
		t.Fatalf("full fallback: Return = %#x, %v, hasCP=%v", tgt, ok, hasCP)
	}

	rasOnly := mk("gshare.rasonly")
	rasOnly.Update(0, 0x100, isa.ClassReturn, true, retPC, 0)
	if _, ok, _, _ := rasOnly.Return(0, 0x100); ok {
		t.Fatal("rasonly: BTB fallback used on empty stack")
	}
	if _, ok := rasOnly.PushReturn(0, retPC); !ok {
		t.Fatal("rasonly: push rejected")
	}
	if tgt, ok, _, hasCP := rasOnly.Return(0, 0x100); !ok || tgt != retPC || !hasCP {
		t.Fatalf("rasonly: Return = %#x, %v, hasCP=%v", tgt, ok, hasCP)
	}

	noRet := mk("gshare.noret")
	if _, ok := noRet.PushReturn(0, retPC); ok {
		t.Fatal("noret: push accepted")
	}
	noRet.Update(0, 0x100, isa.ClassReturn, true, retPC, 0)
	if _, ok, _, _ := noRet.Return(0, 0x100); ok {
		t.Fatal("noret: return predicted")
	}
	if noRet.RASDepth(0) != 0 {
		t.Fatal("noret: RAS grew")
	}
}

func TestHistoryCheckpointRestore(t *testing.T) {
	p := newTest(t, 2)
	cp1 := p.SpeculateHistory(1, true)
	cp2 := p.SpeculateHistory(1, false)
	p.SpeculateHistory(1, true)
	p.RestoreHistory(1, cp2)
	if got := p.History(1); got != cp2 {
		t.Fatalf("restore to cp2: history %b want %b", got, cp2)
	}
	p.RestoreHistory(1, cp1)
	if got := p.History(1); got != 0 {
		t.Fatalf("restore to cp1: history %b want 0", got)
	}
	// Thread 0's history must be untouched.
	if p.History(0) != 0 {
		t.Fatal("cross-thread history contamination")
	}
}

func TestBTBHitAfterInstall(t *testing.T) {
	p := newTest(t, 4)
	p.Update(2, 0x1000, isa.ClassJump, true, 0xBEEF0, p.History(2))
	if tgt, ok := p.Target(2, 0x1000); !ok || tgt != 0xBEEF0 {
		t.Fatalf("BTB lookup = %#x, %v", tgt, ok)
	}
	if _, ok := p.Target(2, 0x1040); ok {
		t.Fatal("BTB hit for never-installed PC")
	}
}

// TestBTBThreadTagging: entries installed by one thread must not be
// returned for another (phantom-branch avoidance, Section 2).
func TestBTBThreadTagging(t *testing.T) {
	p := newTest(t, 8)
	p.Update(3, 0x1000, isa.ClassJump, true, 0xAAAA0, p.History(3))
	if _, ok := p.Target(4, 0x1000); ok {
		t.Fatal("thread 4 hit thread 3's BTB entry")
	}
	if tgt, ok := p.Target(3, 0x1000); !ok || tgt != 0xAAAA0 {
		t.Fatal("thread 3 lost its own entry")
	}
}

// TestBTBLRUEviction: filling a set beyond its associativity evicts the
// least recently used entry, not the most recent.
func TestBTBLRUEviction(t *testing.T) {
	cfg := DefaultConfig(1)
	p := MustNew(cfg).(*unit)
	sets := cfg.BTBEntries / cfg.BTBAssoc
	// PCs mapping to the same set: stride = sets * 4 bytes.
	pcAt := func(i int) int64 { return int64(0x8000 + i*sets*4) }
	for i := 0; i < cfg.BTBAssoc; i++ {
		p.Update(0, pcAt(i), isa.ClassJump, true, int64(0x100+i), 0)
	}
	// Touch entry 0 so entry 1 becomes LRU.
	if _, ok := p.Target(0, pcAt(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	p.Update(0, pcAt(cfg.BTBAssoc), isa.ClassJump, true, 0x999, 0)
	if _, ok := p.Target(0, pcAt(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := p.Target(0, pcAt(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestBTBUpdateRefreshesExisting(t *testing.T) {
	p := newTest(t, 1)
	p.Update(0, 0x2000, isa.ClassJumpInd, true, 0x3000, 0)
	p.Update(0, 0x2000, isa.ClassJumpInd, true, 0x4000, 0)
	if tgt, _ := p.Target(0, 0x2000); tgt != 0x4000 {
		t.Fatalf("BTB target not refreshed: %#x", tgt)
	}
}

func TestRASPushPop(t *testing.T) {
	p := newTest(t, 2)
	p.PushReturn(0, 0x100)
	p.PushReturn(0, 0x200)
	if tgt, ok, _ := p.popReturn(0); !ok || tgt != 0x200 {
		t.Fatalf("pop = %#x, %v", tgt, ok)
	}
	if tgt, ok, _ := p.popReturn(0); !ok || tgt != 0x100 {
		t.Fatalf("pop = %#x, %v", tgt, ok)
	}
	if _, ok, _ := p.popReturn(0); ok {
		t.Fatal("pop from empty stack succeeded")
	}
}

func TestRASPerThread(t *testing.T) {
	p := newTest(t, 2)
	p.PushReturn(0, 0xAAA8)
	p.PushReturn(1, 0xBBB8)
	if tgt, ok, _ := p.popReturn(0); !ok || tgt != 0xAAA8 {
		t.Fatalf("thread 0 pop = %#x, %v", tgt, ok)
	}
	if tgt, ok, _ := p.popReturn(1); !ok || tgt != 0xBBB8 {
		t.Fatalf("thread 1 pop = %#x, %v", tgt, ok)
	}
}

// TestRASOverflowWrap: pushing beyond capacity keeps the most recent
// RASEntries returns (a 12-deep circular stack, per the paper).
func TestRASOverflowWrap(t *testing.T) {
	cfg := DefaultConfig(1)
	p := MustNew(cfg).(*unit)
	n := cfg.RASEntries + 3
	for i := 0; i < n; i++ {
		p.PushReturn(0, int64(i*8))
	}
	if p.RASDepth(0) != cfg.RASEntries {
		t.Fatalf("depth = %d, want %d", p.RASDepth(0), cfg.RASEntries)
	}
	for i := n - 1; i >= n-cfg.RASEntries; i-- {
		tgt, ok, _ := p.popReturn(0)
		if !ok || tgt != int64(i*8) {
			t.Fatalf("pop %d = %#x, %v; want %#x", i, tgt, ok, i*8)
		}
	}
}

// TestRASCheckpointUndo: undoing a push and a pop in reverse order restores
// the stack exactly.
func TestRASCheckpointUndo(t *testing.T) {
	p := newTest(t, 1)
	p.PushReturn(0, 0x10)
	p.PushReturn(0, 0x20)
	// Speculative pop then push (wrong-path call after wrong-path return).
	tgt, ok, cpPop := p.popReturn(0)
	if !ok || tgt != 0x20 {
		t.Fatal("setup pop failed")
	}
	cpPush, _ := p.PushReturn(0, 0x99)
	// Restore in reverse order.
	p.RestoreRAS(0, cpPush)
	p.RestoreRAS(0, cpPop)
	if tgt, ok, _ := p.popReturn(0); !ok || tgt != 0x20 {
		t.Fatalf("after undo, pop = %#x, %v; want 0x20", tgt, ok)
	}
	if tgt, ok, _ := p.popReturn(0); !ok || tgt != 0x10 {
		t.Fatalf("after undo, second pop = %#x, %v; want 0x10", tgt, ok)
	}
}

// TestRASUnderflowCheckpoint: a pop from an empty stack predicts nothing
// and mutates nothing — restoring its checkpoint is a no-op, and the
// stack keeps working afterwards.
func TestRASUnderflowCheckpoint(t *testing.T) {
	p := newTest(t, 1)
	_, ok, cp := p.popReturn(0)
	if ok {
		t.Fatal("pop from empty stack succeeded")
	}
	if p.RASDepth(0) != 0 {
		t.Fatal("underflow changed depth")
	}
	p.RestoreRAS(0, cp)
	p.PushReturn(0, 0x42)
	if tgt, ok, _ := p.popReturn(0); !ok || tgt != 0x42 {
		t.Fatalf("stack broken after underflow restore: %#x, %v", tgt, ok)
	}
}

// TestRASWraparoundUnderSpeculation: drive the stack past its capacity so
// top wraps, speculatively pop and push across the wrap point, then undo
// in reverse order — the stack must predict exactly as if the speculation
// never happened, per thread.
func TestRASWraparoundUnderSpeculation(t *testing.T) {
	cfg := DefaultConfig(2)
	p := MustNew(cfg).(*unit)
	// Fill thread 0 beyond capacity so top has wrapped to a small index.
	n := cfg.RASEntries + cfg.RASEntries/2
	for i := 0; i < n; i++ {
		p.PushReturn(0, int64(0x1000+i*8))
	}
	// Thread 1 gets distinct state that must survive untouched.
	p.PushReturn(1, 0xBEEF)

	// Speculative wrong-path sequence on thread 0: two pops (crossing the
	// wrap boundary backwards) then a push (re-crossing it forwards).
	tgt1, ok1, cp1 := p.popReturn(0)
	tgt2, ok2, cp2 := p.popReturn(0)
	if !ok1 || !ok2 || tgt1 != int64(0x1000+(n-1)*8) || tgt2 != int64(0x1000+(n-2)*8) {
		t.Fatalf("speculative pops = %#x,%v %#x,%v", tgt1, ok1, tgt2, ok2)
	}
	cp3, _ := p.PushReturn(0, 0xDEAD)

	// Squash walk: youngest first.
	p.RestoreRAS(0, cp3)
	p.RestoreRAS(0, cp2)
	p.RestoreRAS(0, cp1)

	if p.RASDepth(0) != cfg.RASEntries {
		t.Fatalf("depth after undo = %d, want %d", p.RASDepth(0), cfg.RASEntries)
	}
	// The stack must replay the most recent RASEntries pushes exactly.
	for i := n - 1; i >= n-cfg.RASEntries; i-- {
		tgt, ok, _ := p.popReturn(0)
		if !ok || tgt != int64(0x1000+i*8) {
			t.Fatalf("post-undo pop %d = %#x, %v; want %#x", i, tgt, ok, 0x1000+i*8)
		}
	}
	if tgt, ok, _ := p.popReturn(1); !ok || tgt != 0xBEEF {
		t.Fatalf("thread 1 state disturbed: %#x, %v", tgt, ok)
	}
}

// Property: a push followed immediately by its restore leaves depth and
// subsequent pops unchanged, from any reachable stack state.
func TestRASPushUndoProperty(t *testing.T) {
	f := func(ops []bool, addr int64) bool {
		p := MustNew(DefaultConfig(1)).(*unit)
		for i, push := range ops {
			if push {
				p.PushReturn(0, int64(i+1)*8)
			} else {
				p.popReturn(0)
			}
		}
		before := p.RASDepth(0)
		cp, _ := p.PushReturn(0, addr)
		p.RestoreRAS(0, cp)
		return p.RASDepth(0) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictabilityOfPatterns: gshare with 11 bits of history must learn a
// short repeating pattern at a single PC essentially perfectly.
func TestPredictabilityOfPatterns(t *testing.T) {
	p := newTest(t, 1)
	pc := int64(0x7700)
	pattern := []bool{true, true, false}
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		actual := pattern[i%len(pattern)]
		pred, _ := p.Direction(0, pc)
		h := p.SpeculateHistory(0, actual) // history tracks actual outcome
		p.Update(0, pc, isa.ClassBranch, actual, 0, h)
		if i > 300 {
			total++
			if pred == actual {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("gshare accuracy on period-3 pattern = %.3f, want > 0.95", acc)
	}
}

// TestSharedPHTInterference: two threads whose branches alias to the same
// PHT counters and train opposite directions must degrade each other — the
// mechanism behind the paper's Table 3 mispredict growth with thread count.
// History is disabled so the aliasing is exact and the effect deterministic.
func TestSharedPHTInterference(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.HistoryLen = 0
	acc := func(p *unit, interfere bool) float64 {
		correct, total := 0, 0
		for i := 0; i < 4000; i++ {
			pc := int64(0x100 + (i%64)*4)
			pred, _ := p.Direction(0, pc)
			p.Update(0, pc, isa.ClassBranch, true, 0, 0)
			if pred {
				correct++
			}
			total++
			if interfere {
				// Thread 1: opposite direction at PCs aliasing to the same
				// PHT counters (index uses pc>>2 mod 2048).
				pc1 := pc + 2048*4
				p.Update(1, pc1, isa.ClassBranch, false, 0, 0)
				p.Update(1, pc1, isa.ClassBranch, false, 0, 0)
			}
		}
		return float64(correct) / float64(total)
	}
	soloAcc := acc(MustNew(cfg).(*unit), false)
	sharedAcc := acc(MustNew(cfg).(*unit), true)
	if soloAcc < 0.9 {
		t.Fatalf("solo accuracy %.3f unexpectedly low", soloAcc)
	}
	if sharedAcc >= soloAcc-0.05 {
		t.Fatalf("no interference: solo %.3f, shared %.3f", soloAcc, sharedAcc)
	}
}

// TestComposedPredictor: a DirEngine wrapped by NewComposed gets the full
// frame — BTB, RAS, history — and its Predict/Update see matching history
// values.
func TestComposedPredictor(t *testing.T) {
	eng := &recordingEngine{}
	cfg := DefaultConfig(1)
	p, err := NewComposed(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	p.SpeculateHistory(0, true)
	pc := int64(0x300)
	if taken, conf := p.Direction(0, pc); taken || conf {
		t.Fatalf("engine answer not passed through: %v %v", taken, conf)
	}
	if eng.lastPredictHist != p.History(0) {
		t.Fatalf("Predict saw history %b, live register is %b", eng.lastPredictHist, p.History(0))
	}
	p.Update(0, pc, isa.ClassBranch, true, 0x400, 0x7F)
	if eng.lastUpdateHist != 0x7F {
		t.Fatalf("Update saw history %b, checkpoint was 0x7F", eng.lastUpdateHist)
	}
	// The frame's BTB and RAS work as for built-ins.
	p.Update(0, 0x500, isa.ClassJump, true, 0x900, 0)
	if tgt, ok := p.Target(0, 0x500); !ok || tgt != 0x900 {
		t.Fatalf("composed BTB lookup = %#x, %v", tgt, ok)
	}
	if _, err := NewComposed(cfg, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

type recordingEngine struct {
	lastPredictHist uint32
	lastUpdateHist  uint32
}

func (r *recordingEngine) Predict(history uint32, pc int64) (bool, bool) {
	r.lastPredictHist = history
	return false, false
}

func (r *recordingEngine) Update(history uint32, pc int64, taken bool) {
	r.lastUpdateHist = history
}
